//! The shim contract: a single-operator plan executes the *identical*
//! stepped task the legacy `SimilarityEngine` entry point drives, so
//! results **and cost accounting** are byte-identical through either
//! surface.
//!
//! Methodology: two engines built identically (same seed, data,
//! replication, cache services) are in identical RNG states; the legacy
//! entry point runs on one, the plan on the other, from the same initiator
//! — so even routing draws coincide and the full `QueryStats` (messages,
//! bytes, probes, candidates, comparisons, cache counters) must match
//! exactly, not just the result rows. Each query runs twice per engine so
//! the cache-on configurations also pin the hot (cache-hit) path.

use proptest::prelude::*;
use sqo_core::{
    AttrPredicate, BrokerConfig, EngineBuilder, JoinOptions, MultiStrategy, QueryStats, Rank,
    SimilarityEngine, Strategy,
};
use sqo_plan::{PlanResult, PlanRow, Query, Session};
use sqo_storage::{Row, Value};

fn word_rows(words: &[String]) -> Vec<Row> {
    words
        .iter()
        .enumerate()
        .map(|(i, w)| {
            Row::new(
                format!("w:{i}"),
                [
                    ("word".to_string(), Value::from(w.clone())),
                    ("rev".to_string(), Value::from(w.chars().rev().collect::<String>())),
                    ("len".to_string(), Value::from(w.chars().count() as i64)),
                ],
            )
        })
        .collect()
}

fn build(words: &[String], replication: usize, cache: bool, seed: u64) -> SimilarityEngine {
    let mut b = EngineBuilder::new().peers(48).q(2).replication(replication).seed(seed);
    if cache {
        b = b.cache_config(BrokerConfig::enabled());
    }
    b.build_with_rows(&word_rows(words))
}

fn stats_repr(s: &QueryStats) -> String {
    format!("{s:?}")
}

/// A boxed legacy selection entry point, for the table-driven select test.
type LegacySelect = Box<
    dyn Fn(&mut SimilarityEngine, sqo_overlay::PeerId) -> (Vec<sqo_core::SelectHit>, QueryStats),
>;

/// Run the plan twice on `plan_engine` and the legacy closure twice on
/// `legacy_engine`, asserting rows and stats match run for run.
fn assert_equivalent(
    legacy_engine: &mut SimilarityEngine,
    plan_engine: &mut SimilarityEngine,
    q: &Query,
    legacy: impl Fn(&mut SimilarityEngine, sqo_overlay::PeerId) -> (Vec<PlanRow>, QueryStats),
) {
    let from_l = legacy_engine.random_peer();
    let from_p = plan_engine.random_peer();
    assert_eq!(from_l, from_p, "identical engines draw identical initiators");
    for round in 0..2 {
        let (expected_rows, expected_stats) = legacy(legacy_engine, from_l);
        let mut session = Session::new(plan_engine, from_p);
        let PlanResult { rows, stats } = session.run(q).expect("plannable");
        assert_eq!(&rows, &expected_rows, "rows differ (round {round})");
        assert_eq!(stats_repr(&stats), stats_repr(&expected_stats), "stats differ (round {round})");
    }
}

fn rows_from_similar(matches: Vec<sqo_core::SimilarMatch>) -> Vec<PlanRow> {
    matches
        .into_iter()
        .map(|m| PlanRow {
            oid: m.oid,
            attr: Some(m.attr.as_str().to_string()),
            value: Value::Str(m.matched),
            score: Some(m.distance as f64),
            object: m.object,
            left: None,
            bindings: Vec::new(),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// `similar` (every strategy) through the plan == the legacy call.
    #[test]
    fn similar_equivalence(
        words in prop::collection::hash_set("[a-d]{2,9}", 2..24),
        query in "[a-d]{2,9}",
        d in 0usize..3,
        replication in 1usize..3,
        cache in any::<bool>(),
        strat in 0usize..3,
    ) {
        let words: Vec<String> = { let mut v: Vec<_> = words.into_iter().collect(); v.sort(); v };
        let strategy = Strategy::ALL[strat];
        let mut le = build(&words, replication, cache, 11);
        let mut pe = build(&words, replication, cache, 11);
        let q = Query::similar(query.clone(), Some("word"), d).strategy(strategy);
        assert_equivalent(&mut le, &mut pe, &q, |e, from| {
            let r = e.similar(&query, Some("word"), d, from, strategy);
            (rows_from_similar(r.matches), r.stats)
        });
    }

    /// Exact / keyword / full-scan / range selections through the plan ==
    /// the legacy calls.
    #[test]
    fn select_equivalence(
        words in prop::collection::hash_set("[a-c]{2,6}", 2..20),
        pick in 0usize..1000,
        kind in 0usize..4,
        replication in 1usize..3,
        cache in any::<bool>(),
    ) {
        let words: Vec<String> = { let mut v: Vec<_> = words.into_iter().collect(); v.sort(); v };
        let target = words[pick % words.len()].clone();
        let mut le = build(&words, replication, cache, 13);
        let mut pe = build(&words, replication, cache, 13);
        let (q, legacy): (Query, LegacySelect) = match kind {
            0 => (
                Query::select_exact("word", Value::from(target.clone())),
                Box::new({ let t = target.clone(); move |e, from| {
                    let r = e.select_exact("word", &Value::from(t.clone()), from);
                    (r.hits, r.stats)
                }}),
            ),
            1 => (
                Query::select_keyword(Value::from(target.clone())),
                Box::new({ let t = target.clone(); move |e, from| {
                    let r = e.select_keyword(&Value::from(t.clone()), from);
                    (r.hits, r.stats)
                }}),
            ),
            2 => (
                Query::select_all("word"),
                Box::new(move |e, from| { let r = e.select_all("word", from); (r.hits, r.stats) }),
            ),
            _ => (
                Query::select_range("len", Value::Int(2), Value::Int(5)),
                Box::new(move |e, from| {
                    let r = e.select_range("len", &Value::Int(2), &Value::Int(5), from);
                    (r.hits, r.stats)
                }),
            ),
        };
        let attr = match kind { 1 => None, 3 => Some("len".to_string()), _ => Some("word".to_string()) };
        assert_equivalent(&mut le, &mut pe, &q, move |e, from| {
            let (hits, stats) = legacy(e, from);
            let rows = hits.into_iter().map(|h| PlanRow {
                oid: h.oid, attr: attr.clone(), value: h.value, score: None,
                object: h.object, left: None, bindings: Vec::new(),
            }).collect();
            (rows, stats)
        });
    }

    /// Scan-left similarity join through the plan == the legacy call,
    /// across windows and left limits.
    #[test]
    fn join_equivalence(
        words in prop::collection::hash_set("[a-c]{3,6}", 2..14),
        d in 0usize..2,
        window in 1usize..4,
        left_limit in prop::option::of(1usize..6),
        replication in 1usize..3,
        cache in any::<bool>(),
    ) {
        let words: Vec<String> = { let mut v: Vec<_> = words.into_iter().collect(); v.sort(); v };
        let mut le = build(&words, replication, cache, 17);
        let mut pe = build(&words, replication, cache, 17);
        let q = Query::join_scan("word", Some("word"), d)
            .strategy(Strategy::QGrams)
            .window(window)
            .left_limit(left_limit);
        assert_equivalent(&mut le, &mut pe, &q, |e, from| {
            let opts = JoinOptions { strategy: Strategy::QGrams, left_limit, window: sqo_core::JoinWindow::Fixed(window) };
            let r = e.sim_join("word", Some("word"), d, from, &opts);
            let rows = r.pairs.into_iter().map(|p| {
                let mut row = rows_from_similar(vec![p.right]).pop().expect("one");
                row.left = Some((p.left_oid, p.left_value));
                row
            }).collect();
            (rows, r.stats)
        });
    }

    /// String top-N through the plan == the legacy call.
    #[test]
    fn topn_string_equivalence(
        words in prop::collection::hash_set("[a-c]{3,7}", 2..16),
        target in "[a-c]{3,7}",
        n in 1usize..5,
        d_max in 1usize..4,
        replication in 1usize..3,
        cache in any::<bool>(),
    ) {
        let words: Vec<String> = { let mut v: Vec<_> = words.into_iter().collect(); v.sort(); v };
        let mut le = build(&words, replication, cache, 19);
        let mut pe = build(&words, replication, cache, 19);
        let q = Query::top_n_similar(Some("word"), n, target.clone(), d_max)
            .strategy(Strategy::QGrams);
        assert_equivalent(&mut le, &mut pe, &q, |e, from| {
            let r = e.top_n_similar(Some("word"), n, &target, d_max, from, Strategy::QGrams);
            let rows = r.items.into_iter().map(|i| PlanRow {
                oid: i.oid, attr: None, value: i.value, score: Some(i.score),
                object: i.object, left: None, bindings: Vec::new(),
            }).collect();
            (rows, r.stats)
        });
    }

    /// Numeric top-N through the plan == the legacy call (all rankings).
    #[test]
    fn topn_numeric_equivalence(
        words in prop::collection::hash_set("[a-c]{2,8}", 3..20),
        n in 1usize..6,
        rank_pick in 0usize..3,
        replication in 1usize..3,
    ) {
        let words: Vec<String> = { let mut v: Vec<_> = words.into_iter().collect(); v.sort(); v };
        let rank = match rank_pick {
            0 => Rank::Min,
            1 => Rank::Max,
            _ => Rank::Nn(Value::Int(4)),
        };
        let mut le = build(&words, replication, false, 23);
        let mut pe = build(&words, replication, false, 23);
        let q = Query::top_n_numeric("len", n, rank.clone());
        assert_equivalent(&mut le, &mut pe, &q, |e, from| {
            let r = e.top_n_numeric("len", n, rank.clone(), from);
            let rows = r.items.into_iter().map(|i| PlanRow {
                oid: i.oid, attr: None, value: i.value, score: Some(i.score),
                object: i.object, left: None, bindings: Vec::new(),
            }).collect();
            (rows, r.stats)
        });
    }

    /// Multi-attribute conjunctions through the plan == the legacy call,
    /// both conjunction strategies.
    #[test]
    fn multi_equivalence(
        words in prop::collection::hash_set("[a-b]{3,6}", 2..12),
        q1 in "[a-b]{3,6}",
        q2 in "[a-b]{3,6}",
        intersect in any::<bool>(),
        replication in 1usize..3,
        cache in any::<bool>(),
    ) {
        let words: Vec<String> = { let mut v: Vec<_> = words.into_iter().collect(); v.sort(); v };
        let multi = if intersect { MultiStrategy::Intersect } else { MultiStrategy::Pipelined };
        let preds = vec![
            AttrPredicate::new("word", q1.clone(), 1),
            AttrPredicate::new("rev", q2.clone(), 1),
        ];
        let mut le = build(&words, replication, cache, 29);
        let mut pe = build(&words, replication, cache, 29);
        let q = Query::similar_multi(preds.clone(), Some(multi)).strategy(Strategy::QGrams);
        assert_equivalent(&mut le, &mut pe, &q, |e, from| {
            let r = e.similar_multi(&preds, from, Strategy::QGrams, multi);
            let rows = r.matches.into_iter().map(|m| PlanRow {
                value: Value::Str(m.oid.clone()),
                oid: m.oid, attr: None, score: None,
                object: m.object, left: None, bindings: m.bindings,
            }).collect();
            (rows, r.stats)
        });
    }
}

/// Regression (code-review finding): a numeric filter must not be narrowed
/// by pushdown. `cmp_holds` coerces across Int/Float, but the index keys
/// live in disjoint per-type families — absorbing a Float literal into a
/// typed exact/range access path would drop Int-stored rows entirely.
#[test]
fn cross_type_numeric_filter_is_not_narrowed_by_pushdown() {
    let rows = vec![Row::new("c:1", [("price", Value::Int(30_000)), ("name", Value::from("bmw"))])];
    let mut engine = EngineBuilder::new().peers(16).q(2).seed(3).build_with_rows(&rows);
    let from = engine.random_peer();
    let mut session = Session::new(&mut engine, from);
    // Float literal over an Int-stored attribute: the filter's coercing
    // comparison accepts the row, so the plan must return it.
    let q = Query::select_all("price").filter_value(
        "price",
        sqo_plan::CmpOp::Eq,
        Value::Float(30_000.0),
    );
    let result = session.run(&q).expect("plannable");
    assert_eq!(result.rows.len(), 1, "Int-stored row must survive a Float-literal filter");
    assert_eq!(result.rows[0].oid, "c:1");
    // And the reverse: Int literal over the same data still matches.
    let q =
        Query::select_all("price").filter_value("price", sqo_plan::CmpOp::Le, Value::Int(30_000));
    let result = session.run(&q).expect("plannable");
    assert_eq!(result.rows.len(), 1);
}
