//! Pinned behavior of the cost-based rewrite pass:
//!
//! * cheapest-first conjunction ordering reduces overlay messages against
//!   author order on a skewed-cardinality workload (results identical),
//! * the sim-join build-side swap scans the smaller side, transposes the
//!   pairs back to author orientation, and costs fewer messages,
//! * the estimates and decisions are recorded in `explain()` (golden).
//!
//! The skew is engineered so the estimates actually discriminate: the
//! initiator owns the popular attribute's partition (exact local counts),
//! while the rare attribute falls to the structural trie-depth fallback.

use sqo_core::{AttrPredicate, EngineBuilder, SimilarityEngine};
use sqo_overlay::key::Key;
use sqo_overlay::PeerId;
use sqo_plan::{Query, Session};
use sqo_storage::{keys, Row, Value};

/// 100 objects carry `big` (values sharing grams with the probe string);
/// only 4 carry `small`. Conjunction matches live on the 4.
fn skewed_rows() -> Vec<Row> {
    let mut rows = Vec::new();
    for i in 0..4 {
        rows.push(Row::new(
            format!("both:{i}"),
            [
                ("big".to_string(), Value::from(format!("bigvalue{i:03}"))),
                ("small".to_string(), Value::from(format!("smol{i}"))),
            ],
        ));
    }
    for i in 4..100 {
        rows.push(Row::new(
            format!("b:{i}"),
            [("big".to_string(), Value::from(format!("bigvalue{i:03}")))],
        ));
    }
    rows
}

fn build(cost_rewrites: bool, seed: u64) -> SimilarityEngine {
    EngineBuilder::new()
        .peers(64)
        .q(2)
        .seed(seed)
        .cost_rewrites(cost_rewrites)
        .build_with_rows(&skewed_rows())
}

/// A peer that stores `key`'s partition, so its estimates for that key
/// come from exact local counts.
fn owner_of(e: &mut SimilarityEngine, key: &Key) -> PeerId {
    let part = e.network().partition_of(key);
    e.network_mut().partition_member(part).expect("alive member")
}

#[test]
fn cost_ordered_conjunction_reduces_messages_vs_author_order() {
    // Author order leads with the *expensive* predicate, and its longer
    // query string makes the built-in length heuristic pick it as the
    // pipelined lead too — the cost model must overrule both.
    let preds =
        vec![AttrPredicate::new("big", "bigvalue001x", 1), AttrPredicate::new("small", "smol1", 1)];
    let probe = keys::instance_gram_key("big", "bi");
    let run = |cost: bool| {
        let mut e = build(cost, 31);
        let from = owner_of(&mut e, &probe);
        let mut session = Session::new(&mut e, from);
        let q = Query::similar_multi(preds.clone(), None);
        let prepared = session.prepare(&q).expect("plannable");
        let result = session.run_prepared(&prepared);
        let mut oids: Vec<String> = result.rows.iter().map(|r| r.oid.clone()).collect();
        oids.sort_unstable();
        (oids, result.stats.traffic.messages, prepared.notes().join("\n"))
    };
    let (oids_author, msgs_author, notes_author) = run(false);
    let (oids_cost, msgs_cost, notes_cost) = run(true);
    assert_eq!(oids_author, oids_cost, "ordering must never change the conjunction's matches");
    assert!(!oids_cost.is_empty(), "the workload must produce matches");
    assert!(
        msgs_cost < msgs_author,
        "cheapest-first lead must cost fewer messages ({msgs_cost} vs {msgs_author})"
    );
    assert!(
        notes_cost.contains("cost: conjunction legs ordered cheapest-first"),
        "the decision must be recorded: {notes_cost}"
    );
    assert!(!notes_author.contains("cost:"), "cost_rewrites=false plans silently: {notes_author}");
}

#[test]
fn join_build_side_swap_scans_smaller_side_and_transposes_back() {
    // bigside: 100 values; smallside: 4 of them verbatim → every scanned
    // smallside value joins its bigside twins at distance <= 1.
    let mut rows = Vec::new();
    for i in 0..100 {
        rows.push(Row::new(
            format!("b:{i}"),
            [("bigside".to_string(), Value::from(format!("jointarget{i:03}")))],
        ));
    }
    for i in 0..4 {
        rows.push(Row::new(
            format!("s:{i}"),
            [("smallside".to_string(), Value::from(format!("jointarget{i:03}")))],
        ));
    }
    let probe = keys::attr_scan_prefix("bigside");
    let run = |cost: bool| {
        let mut e =
            EngineBuilder::new().peers(64).q(2).seed(33).cost_rewrites(cost).build_with_rows(&rows);
        let from = owner_of(&mut e, &probe);
        let mut session = Session::new(&mut e, from);
        let q = Query::join_scan("bigside", Some("smallside"), 1);
        let prepared = session.prepare(&q).expect("plannable");
        let result = session.run_prepared(&prepared);
        // Author orientation: left = bigside, row (right) = smallside.
        let mut pairs: Vec<(String, String, String)> = result
            .rows
            .iter()
            .map(|r| {
                let (l_oid, l_val) = r.left.clone().expect("join rows carry provenance");
                (l_oid, l_val, r.oid.clone())
            })
            .collect();
        pairs.sort_unstable();
        let explain = prepared.explain();
        (pairs, result.stats.traffic.messages, explain)
    };
    let (pairs_plain, msgs_plain, explain_plain) = run(false);
    let (pairs_swap, msgs_swap, explain_swap) = run(true);
    assert!(!pairs_plain.is_empty(), "the join must produce pairs");
    assert_eq!(
        pairs_plain, pairs_swap,
        "the swap must be invisible in the results (author orientation)"
    );
    assert!(
        msgs_swap < msgs_plain,
        "scanning 4 lefts instead of 100 must cost fewer messages \
         ({msgs_swap} vs {msgs_plain})"
    );
    assert!(explain_swap.contains("build side swapped"), "{explain_swap}");
    assert!(explain_swap.contains("cost: simjoin build side swapped"), "{explain_swap}");
    assert!(!explain_plain.contains("swapped"), "{explain_plain}");
    // Row objects in author orientation carry the smallside objects.
    let mut e =
        EngineBuilder::new().peers(64).q(2).seed(33).cost_rewrites(true).build_with_rows(&rows);
    let from = owner_of(&mut e, &probe);
    let mut session = Session::new(&mut e, from);
    let result = session.run(&Query::join_scan("bigside", Some("smallside"), 1)).unwrap();
    for row in &result.rows {
        assert!(row.oid.starts_with("s:"), "row side is the authored right: {}", row.oid);
        assert_eq!(
            row.object.get("smallside"),
            Some(&row.value),
            "transposed rows carry the scanned side's full object"
        );
    }
}

#[test]
fn cost_notes_are_recorded_for_unswapped_joins_too() {
    let mut e = build(true, 35);
    let from = e.random_peer();
    let session = Session::new(&mut e, from);
    // A self-join: sides tie, no swap — but the estimate is still pinned
    // in the notes.
    let prepared = session.prepare(&Query::join_scan("big", Some("big"), 1)).unwrap();
    let notes = prepared.notes().join("\n");
    assert!(notes.contains("cost: simjoin left |big|≈"), "{notes}");
    assert!(!prepared.explain().contains("swapped"), "self-joins never swap");
}

#[test]
fn equivalence_guard_cost_rewrites_leave_pinned_plans_alone() {
    // A Multi with a *pinned* strategy is the author's exact evaluation
    // order — the cost pass must not touch it (this is what keeps the
    // plan/legacy equivalence proptests byte-identical).
    let preds =
        vec![AttrPredicate::new("big", "bigvalue001x", 1), AttrPredicate::new("small", "smol1", 1)];
    let mut e = build(true, 37);
    let from = e.random_peer();
    let session = Session::new(&mut e, from);
    let q = Query::similar_multi(preds.clone(), Some(sqo_core::MultiStrategy::Pipelined));
    let prepared = session.prepare(&q).unwrap();
    assert!(
        !prepared.notes().iter().any(|n| n.contains("conjunction legs ordered")),
        "pinned conjunctions keep author order: {:?}",
        prepared.notes()
    );
    let sqo_plan::PlanNode::Multi(spec) = prepared.plan() else { panic!("multi root") };
    assert_eq!(spec.preds, preds, "author order preserved");
    assert!(!spec.cost_ordered);
}
