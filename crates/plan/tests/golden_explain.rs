//! Golden `explain()` snapshots for representative plans.
//!
//! These pin the exact rendering — parameter resolution (defaults
//! inheritance), rewrite notes (pushdown, limit fusion, broker-aware
//! strategy choice) and the tree shape — so any planner change that moves
//! an access path or annotation shows up as a reviewable diff here.

use sqo_core::{AttrPredicate, JoinWindow, QueryDefaults};
use sqo_overlay::PeerId;
use sqo_plan::{CmpOp, PlannerEnv, PreparedQuery, Query};
use sqo_storage::Value;

fn env_plain() -> PlannerEnv {
    PlannerEnv { defaults: QueryDefaults::default(), cache_active: false, delegation: true }
}

fn env_cached_w8() -> PlannerEnv {
    PlannerEnv {
        defaults: QueryDefaults { join_window: JoinWindow::Fixed(8), ..QueryDefaults::default() },
        cache_active: true,
        delegation: true,
    }
}

fn explain(q: &Query, env: &PlannerEnv) -> String {
    PreparedQuery::with_env(q, env, PeerId(0)).expect("plannable").explain()
}

#[test]
fn pipeline_select_join_topn() {
    let q = Query::select_range("price", Value::Int(0), Value::Int(50_000))
        .sim_join("dealer", Some("dlrname"), 1)
        .top_n(5);
    assert_eq!(
        explain(&q, &env_plain()),
        "TopN n=5 by=score [local rank + truncate]\n\
         └─ SimJoin ln=dealer rn=dlrname d=1 window=1 left_limit=∞ strategy=qgrams \
         [left from input rows, per-left Similar]\n\
         \x20  └─ SelectRange attr=price lo=0 hi=50000 [order-preserving shower scan]"
    );
}

#[test]
fn pipeline_inherits_join_window_default() {
    let q = Query::select_range("price", Value::Int(0), Value::Int(50_000))
        .sim_join("dealer", Some("dlrname"), 1)
        .top_n(5);
    assert_eq!(
        explain(&q, &env_cached_w8()),
        "TopN n=5 by=score [local rank + truncate]\n\
         └─ SimJoin ln=dealer rn=dlrname d=1 window=8 left_limit=∞ strategy=qgrams \
         [left from input rows, per-left Similar]\n\
         \x20  └─ SelectRange attr=price lo=0 hi=50000 [order-preserving shower scan]"
    );
}

#[test]
fn equality_pushdown_into_exact_key() {
    let q =
        Query::select_all("color").filter_value("color", CmpOp::Eq, Value::from("blue")).limit(3);
    assert_eq!(
        explain(&q, &env_cached_w8()),
        "Limit n=3\n\
         └─ Filter color = blue [local residual]\n\
         \x20  └─ SelectExact attr=color value=blue [exact index key, cached single-key \
         retrieve]\n\
         --\n\
         note: pushdown: σ(color = blue) absorbed into an exact key lookup (served from the \
         posting cache when hot)"
    );
}

#[test]
fn range_pushdown_keeps_residual_filter() {
    let q = Query::select_all("name").filter_value("name", CmpOp::Lt, Value::from("model05"));
    let rendered = explain(&q, &env_plain());
    assert!(rendered.contains("SelectRange attr=name"), "{rendered}");
    assert!(rendered.contains("Filter name < model05 [local residual]"), "{rendered}");
    assert!(rendered.contains("note: pushdown: σ(name < model05) absorbed into a range access"));
}

#[test]
fn numeric_literals_are_never_pushed_down() {
    // The filter coerces across Int/Float (190 matches 190.0) but the
    // index keys live in disjoint per-type families, so absorbing a
    // numeric literal into a typed access path would silently drop rows
    // stored under the other numeric type. The scan must survive.
    for lit in [Value::Int(190), Value::Float(190.0)] {
        for op in [CmpOp::Eq, CmpOp::Lt, CmpOp::Ge] {
            let q = Query::select_all("hp").filter_value("hp", op, lit.clone());
            let rendered = explain(&q, &env_cached_w8());
            assert!(rendered.contains("SelectAll attr=hp"), "scan must remain: {rendered}");
            assert!(!rendered.contains("note: pushdown"), "no pushdown note: {rendered}");
        }
    }
}

#[test]
fn schema_level_similar() {
    let q = Query::similar("dlrid", None, 1);
    assert_eq!(
        explain(&q, &env_plain()),
        "Similar s=\"dlrid\" attr=<schema> d=1 strategy=qgrams [schema level, delegated gram \
         probes]"
    );
}

#[test]
fn limit_fuses_into_string_topn() {
    let q = Query::top_n_similar(Some("word"), 5, "house", 3).limit(2);
    assert_eq!(
        explain(&q, &env_plain()),
        "TopNString target=\"house\" attr=word n=2 d_max=3 strategy=qgrams [expanding distance \
         shells]\n\
         --\n\
         note: limit fusion: LIMIT 2 tightened string top-N to n=2"
    );
}

#[test]
fn multi_strategy_is_broker_aware() {
    let preds =
        vec![AttrPredicate::new("first", "johann", 1), AttrPredicate::new("last", "mueller", 1)];
    let q = Query::similar_multi(preds, None);
    assert_eq!(
        explain(&q, &env_plain()),
        "Multi preds=[dist(first, \"johann\") <= 1 AND dist(last, \"mueller\") <= 1] \
         strategy=qgrams [pipelined: lead sub-query + local residual]\n\
         --\n\
         note: multi: chose Pipelined (one network pass, residual predicates verified locally)"
    );
    assert_eq!(
        explain(&q, &env_cached_w8()),
        "Multi preds=[dist(first, \"johann\") <= 1 AND dist(last, \"mueller\") <= 1] \
         strategy=qgrams [intersect sub-queries]\n\
         --\n\
         note: multi: chose Intersect (posting cache active; repeated sub-queries share cached \
         gram lists)"
    );
}

/// Costed planning golden: estimates and the build-side decision are
/// pinned with their concrete numbers (engine-backed, fully
/// deterministic — a planner or estimator change shows up as a diff
/// here).
#[test]
fn costed_join_swap_golden() {
    use sqo_core::EngineBuilder;
    use sqo_plan::Session;
    use sqo_storage::Row;

    let mut rows = Vec::new();
    for i in 0..60 {
        rows.push(Row::new(format!("c:{i}"), [("name", Value::from(format!("carname{i:03}")))]));
    }
    for i in 0..3 {
        rows.push(Row::new(format!("d:{i}"), [("dlrname", Value::from(format!("dealer{i}")))]));
    }
    let mut engine = EngineBuilder::new().peers(64).q(2).seed(41).build_with_rows(&rows);
    // The initiator owns the popular attribute's partition: its side
    // estimate is an exact local count, the rare side falls to the
    // trie-depth heuristic.
    let part = engine.network().partition_of(&sqo_storage::keys::attr_scan_prefix("name"));
    let from = engine.network_mut().partition_member(part).expect("alive member");
    let session = Session::new(&mut engine, from);
    let q = Query::join_scan("name", Some("dlrname"), 1);
    assert_eq!(
        session.explain(&q).expect("plannable"),
        "SimJoin ln=dlrname rn=name d=1 window=1 left_limit=∞ strategy=qgrams [build side \
         swapped: scanning attr=dlrname, pairs transposed back, per-left Similar]\n\
         --\n\
         note: cost: simjoin build side swapped — |name|≈67 (local) vs |dlrname|≈10 (trie): \
         scanning dlrname"
    );
}

#[test]
fn invalid_plans_are_rejected_not_panicked() {
    let zero = Query::top_n_similar(Some("w"), 0, "x", 2);
    assert!(PreparedQuery::with_env(&zero, &env_plain(), PeerId(0)).is_err());
    let empty = Query::similar_multi(Vec::new(), None);
    assert!(PreparedQuery::with_env(&empty, &env_plain(), PeerId(0)).is_err());
    let bad_nn = Query::top_n_numeric("hp", 3, sqo_core::Rank::Nn(Value::from("not-a-number")));
    assert!(PreparedQuery::with_env(&bad_nn, &env_plain(), PeerId(0)).is_err());
}
