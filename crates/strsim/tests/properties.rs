//! Property-based tests for the approximate-string-matching substrate.
//!
//! These pin down the *soundness* invariants the distributed operators rely
//! on: if a filter or sampling scheme violated them, the DHT operators would
//! silently drop true matches — the worst failure mode for a similarity
//! index.

use proptest::prelude::*;
use sqo_strsim::edit::{levenshtein, levenshtein_bounded};
use sqo_strsim::filters::{count_filter_threshold, length_filter, position_filter};
use sqo_strsim::qgram::{padded_qgrams, qgram_count, qgrams};
use sqo_strsim::qsample::{is_complete_sample, qsamples};
use std::collections::HashMap;

fn word() -> impl Strategy<Value = String> {
    "[a-f]{0,16}"
}

fn shared_qgram_count(a: &str, b: &str, q: usize) -> usize {
    let mut bag: HashMap<String, usize> = HashMap::new();
    for g in qgrams(a, q) {
        *bag.entry(g.gram).or_insert(0) += 1;
    }
    let mut shared = 0;
    for g in qgrams(b, q) {
        if let Some(c) = bag.get_mut(&g.gram) {
            if *c > 0 {
                *c -= 1;
                shared += 1;
            }
        }
    }
    shared
}

proptest! {
    /// Edit distance is a metric: symmetry, identity, triangle inequality.
    #[test]
    fn edit_distance_is_a_metric(a in word(), b in word(), c in word()) {
        let ab = levenshtein(&a, &b);
        let ba = levenshtein(&b, &a);
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(levenshtein(&a, &a), 0);
        let ac = levenshtein(&a, &c);
        let cb = levenshtein(&c, &b);
        prop_assert!(ab <= ac + cb, "triangle violated: d({},{})={} > {}+{}", a, b, ab, ac, cb);
    }

    /// The banded computation agrees with the exact one for every bound.
    #[test]
    fn bounded_matches_exact(a in word(), b in word(), d in 0usize..20) {
        let exact = levenshtein(&a, &b);
        match levenshtein_bounded(&a, &b, d) {
            Some(got) => {
                prop_assert!(exact <= d);
                prop_assert_eq!(got, exact);
            }
            None => prop_assert!(exact > d),
        }
    }

    /// Length difference lower-bounds the edit distance, so the length filter
    /// is sound.
    #[test]
    fn length_filter_sound(a in word(), b in word()) {
        let d = levenshtein(&a, &b);
        prop_assert!(length_filter(a.chars().count(), b.chars().count(), d));
    }

    /// Count filter soundness: strings within distance d share at least the
    /// threshold number of q-grams.
    #[test]
    fn count_filter_sound(a in word(), b in word(), q in 1usize..5) {
        let d = levenshtein(&a, &b);
        let bound = count_filter_threshold(a.chars().count(), b.chars().count(), q, d);
        let shared = shared_qgram_count(&a, &b, q) as i64;
        prop_assert!(shared >= bound,
            "a={:?} b={:?} q={} d={} shared={} bound={}", a, b, q, d, shared, bound);
    }

    /// Position filter soundness: some occurrence of a preserved sample gram
    /// lies within d positions. We verify the weaker but operationally used
    /// form: for every pair within distance d, at least one query q-gram
    /// occurs in the data string at an offset within d of its query offset —
    /// provided the query admits a complete (d+1)-sample.
    #[test]
    fn qsample_completeness(a in "[a-c]{6,24}", d in 1usize..4, seed in 0u64..1000) {
        let q = 2;
        prop_assume!(is_complete_sample(a.chars().count(), q, d));
        // Derive b from a by exactly <= d random edits.
        let mut b: Vec<char> = a.chars().collect();
        let mut s = seed;
        for _ in 0..d {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pos = (s >> 33) as usize % (b.len() + 1);
            match (s >> 13) % 3 {
                0 if pos < b.len() => { b[pos] = char::from(b'a' + ((s >> 3) % 3) as u8); }
                1 if pos < b.len() => { b.remove(pos); }
                _ => { b.insert(pos, char::from(b'a' + ((s >> 3) % 3) as u8)); }
            }
        }
        let b: String = b.into_iter().collect();
        let dist = levenshtein(&a, &b);
        prop_assume!(dist <= d); // edits may cancel; only the <= d case matters
        let sample = qsamples(&a, q, d);
        let b_grams = qgrams(&b, q);
        let hit = sample.iter().any(|sg| {
            b_grams.iter().any(|bg| bg.gram == sg.gram && position_filter(bg.pos, sg.pos, d))
        });
        prop_assert!(hit, "no sample gram of {:?} found in {:?} within shift {}", a, b, d);
    }

    /// Gram counts follow the closed-form formulas.
    #[test]
    fn gram_count_formulas(a in word(), q in 1usize..5) {
        let n = a.chars().count();
        prop_assert_eq!(qgrams(&a, q).len(), qgram_count(n, q));
        if n > 0 {
            prop_assert_eq!(padded_qgrams(&a, q).len(), n + q - 1);
        }
    }

    /// Every sample is a subset of the full positional q-gram set.
    #[test]
    fn samples_subset_of_grams(a in word(), q in 1usize..4, d in 0usize..4) {
        let all: std::collections::HashSet<_> =
            qgrams(&a, q).into_iter().map(|g| (g.gram, g.pos)).collect();
        for g in qsamples(&a, q, d) {
            prop_assert!(all.contains(&(g.gram.clone(), g.pos)));
        }
        prop_assert!(qsamples(&a, q, d).len() <= d + 1);
    }
}
