//! Numeric similarity.
//!
//! The paper (§4): *"For similarity queries on numerical attributes we map
//! the provided similarity measure to a corresponding interval and process
//! them as range queries."* The distance is Euclidean (§3), which in one
//! dimension is `|a - b|`, so similarity `dist(x, v) <= eps` becomes the key
//! range `[v - eps, v + eps]`.

/// A closed interval on a numeric domain, produced from a similarity
/// predicate and consumed by the overlay's range-query operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NumericInterval {
    Int { lo: i64, hi: i64 },
    Float { lo: f64, hi: f64 },
}

impl NumericInterval {
    /// Interval of integers within distance `eps` of `v` (saturating at the
    /// domain bounds).
    pub fn around_int(v: i64, eps: u64) -> Self {
        let eps = eps.min(i64::MAX as u64) as i64;
        NumericInterval::Int { lo: v.saturating_sub(eps), hi: v.saturating_add(eps) }
    }

    /// Interval of floats within distance `eps` of `v`.
    ///
    /// `eps` must be finite and non-negative.
    pub fn around_float(v: f64, eps: f64) -> Self {
        assert!(eps.is_finite() && eps >= 0.0, "eps must be finite and non-negative");
        NumericInterval::Float { lo: v - eps, hi: v + eps }
    }

    /// Containment test, used by the result verification step.
    pub fn contains_int(&self, x: i64) -> bool {
        match *self {
            NumericInterval::Int { lo, hi } => lo <= x && x <= hi,
            NumericInterval::Float { lo, hi } => lo <= x as f64 && x as f64 <= hi,
        }
    }

    /// Containment test for floats.
    pub fn contains_float(&self, x: f64) -> bool {
        match *self {
            NumericInterval::Int { lo, hi } => lo as f64 <= x && x <= hi as f64,
            NumericInterval::Float { lo, hi } => lo <= x && x <= hi,
        }
    }
}

/// One-dimensional Euclidean distance for integers, saturating.
#[inline]
pub fn int_distance(a: i64, b: i64) -> u64 {
    a.abs_diff(b)
}

/// One-dimensional Euclidean distance for floats.
#[inline]
pub fn float_distance(a: f64, b: f64) -> f64 {
    (a - b).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_interval_roundtrip() {
        let iv = NumericInterval::around_int(100, 5);
        assert_eq!(iv, NumericInterval::Int { lo: 95, hi: 105 });
        assert!(iv.contains_int(95));
        assert!(iv.contains_int(105));
        assert!(!iv.contains_int(106));
    }

    #[test]
    fn int_interval_saturates() {
        let iv = NumericInterval::around_int(i64::MIN + 1, 10);
        if let NumericInterval::Int { lo, .. } = iv {
            assert_eq!(lo, i64::MIN);
        } else {
            panic!("wrong variant");
        }
        let iv = NumericInterval::around_int(i64::MAX - 1, u64::MAX);
        if let NumericInterval::Int { lo, hi } = iv {
            assert_eq!(hi, i64::MAX);
            assert!(lo < 0);
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn float_interval() {
        let iv = NumericInterval::around_float(1.5, 0.25);
        assert!(iv.contains_float(1.25));
        assert!(iv.contains_float(1.75));
        assert!(!iv.contains_float(1.7500001));
    }

    #[test]
    fn zero_eps_is_point() {
        let iv = NumericInterval::around_int(7, 0);
        assert!(iv.contains_int(7));
        assert!(!iv.contains_int(8));
        assert!(!iv.contains_int(6));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_eps_panics() {
        NumericInterval::around_float(0.0, -1.0);
    }

    #[test]
    fn distances() {
        assert_eq!(int_distance(3, 10), 7);
        assert_eq!(int_distance(10, 3), 7);
        assert_eq!(int_distance(i64::MIN, i64::MAX), u64::MAX);
        assert!((float_distance(2.5, -1.0) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn mixed_containment() {
        let iv = NumericInterval::around_int(10, 2);
        assert!(iv.contains_float(9.5));
        assert!(!iv.contains_float(12.5));
        let fv = NumericInterval::around_float(10.0, 2.0);
        assert!(fv.contains_int(12));
        assert!(!fv.contains_int(13));
    }
}
