//! Positional q-grams.
//!
//! A *q-gram* of a string `s` is a substring of fixed length `q`; a
//! *positional* q-gram additionally records its starting offset. Two strings
//! within edit distance `d` must share many q-grams (see
//! [`crate::filters::count_filter_threshold`]), and matching q-grams of a
//! low-distance pair cannot start at offsets differing by more than `d`
//! (position filter). This is the index unit of the paper's storage scheme
//! (§4): every triple value is posted once per q-gram under
//! `key(A # q_gram)`.
//!
//! Offsets are expressed in Unicode scalar values (characters), consistent
//! with [`crate::edit`].

/// A q-gram together with the character offset at which it starts.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PositionalQGram {
    /// The substring of length `q` (or shorter only for [`padded_qgrams`]'
    /// virtual padding-free variant — never for [`qgrams`]).
    pub gram: String,
    /// Character offset of the gram's first character within the string.
    pub pos: u32,
}

impl PositionalQGram {
    pub fn new(gram: impl Into<String>, pos: u32) -> Self {
        Self { gram: gram.into(), pos }
    }
}

/// All overlapping positional q-grams of `s`.
///
/// A string of `n >= q` characters yields exactly `n - q + 1` grams; strings
/// shorter than `q` yield none (the operators index those in a dedicated
/// short-string family, see `sqo-storage`).
///
/// ```
/// use sqo_strsim::qgrams;
/// let g = qgrams("abcd", 2);
/// let texts: Vec<_> = g.iter().map(|g| (g.gram.as_str(), g.pos)).collect();
/// assert_eq!(texts, vec![("ab", 0), ("bc", 1), ("cd", 2)]);
/// assert!(qgrams("a", 2).is_empty());
/// ```
pub fn qgrams(s: &str, q: usize) -> Vec<PositionalQGram> {
    assert!(q >= 1, "q must be at least 1");
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < q {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(chars.len() - q + 1);
    for i in 0..=chars.len() - q {
        out.push(PositionalQGram { gram: chars[i..i + q].iter().collect(), pos: i as u32 });
    }
    out
}

/// Padded positional q-grams: the string is conceptually extended with
/// `q - 1` leading `'#'` and trailing `'$'` characters, so even strings
/// shorter than `q` produce grams and edits near the string boundaries are
/// reflected in boundary grams.
///
/// This variant is provided for the ablation benches comparing padded vs.
/// unpadded indexing; the default pipeline uses [`qgrams`] (the paper's
/// formulation) plus a short-string side index.
///
/// ```
/// use sqo_strsim::padded_qgrams;
/// let g = padded_qgrams("ab", 3);
/// let texts: Vec<_> = g.iter().map(|g| g.gram.as_str()).collect();
/// assert_eq!(texts, vec!["##a", "#ab", "ab$", "b$$"]);
/// ```
pub fn padded_qgrams(s: &str, q: usize) -> Vec<PositionalQGram> {
    assert!(q >= 1, "q must be at least 1");
    let mut padded: Vec<char> = Vec::with_capacity(s.chars().count() + 2 * (q - 1));
    padded.extend(std::iter::repeat_n('#', q - 1));
    padded.extend(s.chars());
    padded.extend(std::iter::repeat_n('$', q - 1));
    if padded.len() < q {
        // Only possible for the empty string with q == 1.
        return Vec::new();
    }
    let mut out = Vec::with_capacity(padded.len() - q + 1);
    for i in 0..=padded.len() - q {
        out.push(PositionalQGram { gram: padded[i..i + q].iter().collect(), pos: i as u32 });
    }
    out
}

/// Number of overlapping (unpadded) q-grams of a string with `len` characters.
#[inline]
pub fn qgram_count(len: usize, q: usize) -> usize {
    (len + 1).saturating_sub(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_gram_set() {
        let g = qgrams("similar", 3);
        let texts: Vec<_> = g.iter().map(|g| g.gram.as_str()).collect();
        assert_eq!(texts, vec!["sim", "imi", "mil", "ila", "lar"]);
        assert_eq!(g[0].pos, 0);
        assert_eq!(g[4].pos, 4);
    }

    #[test]
    fn string_equal_to_q() {
        let g = qgrams("abc", 3);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0], PositionalQGram::new("abc", 0));
    }

    #[test]
    fn too_short_yields_none() {
        assert!(qgrams("ab", 3).is_empty());
        assert!(qgrams("", 1).is_empty());
    }

    #[test]
    fn count_formula_matches() {
        for len in 0..20 {
            let s: String = std::iter::repeat_n('x', len).collect();
            for q in 1..5 {
                assert_eq!(qgrams(&s, q).len(), qgram_count(len, q), "len={len} q={q}");
            }
        }
    }

    #[test]
    fn padded_covers_short_strings() {
        assert_eq!(padded_qgrams("a", 3).len(), 3); // ##a, #a$, a$$
        assert_eq!(padded_qgrams("", 3).len(), 2); // ##$, #$$
    }

    #[test]
    fn padded_count() {
        // n + q - 1 grams for padded strings of n >= 1.
        for len in 1..10 {
            let s: String = std::iter::repeat_n('y', len).collect();
            for q in 1..5 {
                assert_eq!(padded_qgrams(&s, q).len(), len + q - 1, "len={len} q={q}");
            }
        }
    }

    #[test]
    fn unicode_positions_are_char_offsets() {
        let g = qgrams("日本語x", 2);
        assert_eq!(g.len(), 3);
        assert_eq!(g[0].gram, "日本");
        assert_eq!(g[2].gram, "語x");
        assert_eq!(g[2].pos, 2);
    }

    #[test]
    #[should_panic(expected = "q must be at least 1")]
    fn q_zero_panics() {
        qgrams("abc", 0);
    }
}
