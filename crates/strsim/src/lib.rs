//! # sqo-strsim — approximate string matching substrate
//!
//! The similarity operators of the paper (Karnstedt et al., *Similarity
//! Queries on Structured Data in Structured Overlays*, ICDE 2006) are built on
//! classic approximate-string-matching machinery:
//!
//! * **edit distance** (Levenshtein) as the similarity measure for strings
//!   (paper §3: `dist` is "the edit distance for strings"),
//! * **positional q-grams** (Gravano et al., VLDB 2001 \[7\]) with count,
//!   length and position filters to prune candidates cheaply,
//! * **q-samples** (Schallehn et al., CoopIS 2004 \[11\]): probing only
//!   `d + 1` non-overlapping q-grams of the query string, which trades
//!   candidate quality for far fewer index probes.
//!
//! This crate implements that substrate as pure, allocation-conscious
//! functions with no overlay dependencies, so it can be unit- and
//! property-tested in isolation and reused by the operators in `sqo-core`.
//!
//! ## Filter soundness
//!
//! The paper states the q-gram count bound as
//! `max(|s1|,|s2|) - 1 - (d-1)·q`, which is a typo of the (sound) bound from
//! Gravano et al. \[7\] for unpadded overlapping q-grams:
//!
//! ```text
//! |G(s1) ∩ G(s2)|  ≥  max(|s1|, |s2|) - q + 1 - d·q
//! ```
//!
//! (a string of length `n` has `n - q + 1` q-grams and a single edit operation
//! can destroy at most `q` of them). We implement the sound bound; the
//! property tests in [`filters`] verify it never prunes a true match.

pub mod edit;
pub mod filters;
pub mod numeric;
pub mod qgram;
pub mod qsample;

pub use edit::{levenshtein, levenshtein_bounded, within_distance};
pub use filters::{count_filter_threshold, length_filter, position_filter, FilterConfig};
pub use numeric::NumericInterval;
pub use qgram::{padded_qgrams, qgrams, PositionalQGram};
pub use qsample::{qsamples, MIN_SAMPLABLE_FACTOR};
