//! Q-samples: probing a subset of the query's q-grams.
//!
//! The paper (§4, after Schallehn et al. \[11\]) observes that probing *all*
//! overlapping q-grams of the search string is expensive in a DHT — each
//! distinct gram is one `Retrieve` — and that a *q-sample* of only `d + 1`
//! **non-overlapping** grams suffices for completeness:
//!
//! > "For q-sampling we process the search string from left to right and
//! > construct d+1 non-overlapping q-grams, starting from each qth position,
//! > if s is long enough."
//!
//! **Completeness argument (pigeonhole).** Take `d + 1` pairwise disjoint
//! q-grams of the query `s`. Any string `t` with `edit(s, t) <= d` is reached
//! from `s` by at most `d` edit operations, and each operation can destroy
//! grams overlapping a single character position — in particular it can
//! invalidate at most one of the *disjoint* sample grams. Hence at least one
//! sample gram survives verbatim in `t` (shifted by at most `d` positions),
//! so probing the index for the sample grams with a position tolerance of `d`
//! finds every true match. The price is weaker pruning: a single gram match
//! already makes a candidate (no count filter), so more candidates reach the
//! final edit-distance verification — exactly the trade-off the paper
//! evaluates in Figure 1.

use crate::qgram::PositionalQGram;

/// A string must have at least `(d + 1) * q` characters for a complete
/// q-sample of `d + 1` disjoint grams to exist. Shorter query strings fall
/// back to a different strategy (see `sqo-core::similar`).
pub const MIN_SAMPLABLE_FACTOR: usize = 1;

/// Returns `d + 1` non-overlapping positional q-grams of `s`, taken left to
/// right from every q-th position, or fewer if `s` is too short (down to a
/// single gram for `q <= |s| < 2q`; empty if `|s| < q`).
///
/// When fewer than `d + 1` disjoint grams fit, the sample is **not**
/// complete for distance `d`; callers must detect this via
/// [`is_complete_sample`] and fall back (the paper's "if s is long enough"
/// clause).
///
/// ```
/// use sqo_strsim::qsamples;
/// let s = qsamples("abcdefghij", 3, 2); // need 3 disjoint 3-grams
/// let texts: Vec<_> = s.iter().map(|g| (g.gram.as_str(), g.pos)).collect();
/// assert_eq!(texts, vec![("abc", 0), ("def", 3), ("ghi", 6)]);
/// ```
pub fn qsamples(s: &str, q: usize, d: usize) -> Vec<PositionalQGram> {
    assert!(q >= 1, "q must be at least 1");
    let chars: Vec<char> = s.chars().collect();
    let wanted = d + 1;
    let mut out = Vec::with_capacity(wanted);
    let mut start = 0usize;
    while out.len() < wanted && start + q <= chars.len() {
        out.push(PositionalQGram {
            gram: chars[start..start + q].iter().collect(),
            pos: start as u32,
        });
        start += q;
    }
    out
}

/// `true` iff a query of `len` characters admits `d + 1` disjoint q-grams,
/// i.e. the q-sample produced by [`qsamples`] is complete for distance `d`.
#[inline]
pub fn is_complete_sample(len: usize, q: usize, d: usize) -> bool {
    len >= (d + 1) * q * MIN_SAMPLABLE_FACTOR
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit::within_distance;
    use crate::qgram::qgrams;

    #[test]
    fn takes_d_plus_one_disjoint_grams() {
        let s = qsamples("abcdefghijkl", 3, 3);
        assert_eq!(s.len(), 4);
        let positions: Vec<u32> = s.iter().map(|g| g.pos).collect();
        assert_eq!(positions, vec![0, 3, 6, 9]);
    }

    #[test]
    fn short_string_yields_partial_sample() {
        // 7 chars, q=3: only 2 disjoint grams fit even though d+1 = 4.
        let s = qsamples("abcdefg", 3, 3);
        assert_eq!(s.len(), 2);
        assert!(!is_complete_sample(7, 3, 3));
        assert!(is_complete_sample(12, 3, 3));
    }

    #[test]
    fn below_q_yields_empty() {
        assert!(qsamples("ab", 3, 2).is_empty());
    }

    #[test]
    fn samples_are_subset_of_qgrams() {
        let s = "overlaynetworksimilarity";
        let all: std::collections::HashSet<_> =
            qgrams(s, 3).into_iter().map(|g| (g.gram, g.pos)).collect();
        for g in qsamples(s, 3, 4) {
            assert!(all.contains(&(g.gram.clone(), g.pos)), "{g:?} not a q-gram of {s}");
        }
    }

    /// The pigeonhole completeness property: for strings within distance d,
    /// at least one sample gram of the query occurs in the data string
    /// (anywhere — position tolerance is checked separately with slack d).
    #[test]
    fn pigeonhole_completeness_on_mutations() {
        let base = "similarityqueriesonstructureddata";
        let q = 3;
        // Apply up to d hand-picked edits and check a sample gram survives.
        let mutations = [
            (1, "simiXarityqueriesonstructureddata".to_string()), // substitution
            (2, "imilarityquerieonstructureddata".to_string()),   // 2 deletions
            (3, "ximilarityqueriesonxstructureddataxx".to_string()), // mixed
        ];
        for (d, mutated) in mutations {
            assert!(within_distance(base, &mutated, d + 2), "sanity");
            let sample = qsamples(base, q, d);
            assert!(is_complete_sample(base.chars().count(), q, d));
            let found = sample.iter().any(|g| mutated.contains(&g.gram));
            assert!(found, "no sample gram of {base:?} survives in {mutated:?} (d={d})");
        }
    }
}
