//! Levenshtein edit distance.
//!
//! Two entry points are provided:
//!
//! * [`levenshtein`] — the exact distance, two-row dynamic program,
//!   `O(|a|·|b|)` time and `O(min(|a|,|b|))` space.
//! * [`levenshtein_bounded`] — banded variant that only fills the diagonal
//!   band of width `2d + 1` and gives up early once the distance provably
//!   exceeds `d`. This is the verifier used in the final step of the
//!   `Similar` operator (Algorithm 2, line 23 of the paper), where `d` is
//!   small (the paper's workload uses `d ≤ 5`).
//!
//! Distances are computed over Unicode scalar values, not bytes, so that a
//! multi-byte character counts as a single edit.

/// Exact Levenshtein distance between `a` and `b`.
///
/// ```
/// use sqo_strsim::levenshtein;
/// assert_eq!(levenshtein("kitten", "sitting"), 3);
/// assert_eq!(levenshtein("", "abc"), 3);
/// assert_eq!(levenshtein("same", "same"), 0);
/// ```
pub fn levenshtein(a: &str, b: &str) -> usize {
    if a == b {
        return 0;
    }
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    levenshtein_chars(&a, &b)
}

fn levenshtein_chars(a: &[char], b: &[char]) -> usize {
    // Keep the shorter string in the inner dimension to minimize row size.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len();
    }
    let mut row: Vec<usize> = (0..=short.len()).collect();
    for (i, &lc) in long.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            let next = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = next;
        }
    }
    row[short.len()]
}

/// Banded Levenshtein: returns `Some(dist)` if `dist(a, b) <= d`, else `None`.
///
/// Runs in `O(d · min(|a|,|b|))` time. The band exploits that any cell
/// `(i, j)` with `|i - j| > d` cannot lie on a path of cost `≤ d`.
///
/// ```
/// use sqo_strsim::levenshtein_bounded;
/// assert_eq!(levenshtein_bounded("kitten", "sitting", 3), Some(3));
/// assert_eq!(levenshtein_bounded("kitten", "sitting", 2), None);
/// assert_eq!(levenshtein_bounded("abc", "abc", 0), Some(0));
/// ```
pub fn levenshtein_bounded(a: &str, b: &str, d: usize) -> Option<usize> {
    // Length filter before any allocation: the distance is at least the
    // character-count difference. This is the hot path of the naive
    // baseline, which compares the query against *every* stored value.
    let alen = a.chars().count();
    let blen = b.chars().count();
    if alen.abs_diff(blen) > d {
        return None;
    }
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    if long.len() - short.len() > d {
        return None;
    }
    if short.is_empty() {
        return Some(long.len());
    }
    if d == 0 {
        return if short == long { Some(0) } else { None };
    }

    const INF: usize = usize::MAX / 2;
    let n = short.len();
    let mut row = vec![INF; n + 1];
    for (j, slot) in row.iter_mut().enumerate().take(d.min(n) + 1) {
        *slot = j;
    }
    for (i, &lc) in long.iter().enumerate() {
        let i1 = i + 1;
        // Band for this row: columns j with |i1 - j| <= d.
        let lo = i1.saturating_sub(d);
        let hi = (i1 + d).min(n);
        let mut prev_diag = if lo == 0 { i } else { row[lo - 1] };
        let mut row_min = INF;
        // Cell left of the band start is outside the band: unreachable.
        let mut left = if lo == 0 { i1 } else { INF };
        if lo == 0 {
            row[0] = i1;
            row_min = i1;
        }
        for j in lo.max(1)..=hi {
            let sc = short[j - 1];
            let cost = usize::from(lc != sc);
            let up = row[j];
            let next = (prev_diag + cost).min(left + 1).min(up + 1);
            prev_diag = up;
            row[j] = next;
            left = next;
            row_min = row_min.min(next);
        }
        // Invalidate the cell just right of the band so the next row does not
        // read a stale value from two rows ago.
        if hi < n {
            row[hi + 1] = INF;
        }
        if row_min > d {
            return None;
        }
    }
    let dist = row[n];
    (dist <= d).then_some(dist)
}

/// `true` iff `dist(a, b) <= d`. Convenience wrapper over
/// [`levenshtein_bounded`].
pub fn within_distance(a: &str, b: &str, d: usize) -> bool {
    levenshtein_bounded(a, b, d).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_pairs() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("gumbo", "gambol"), 2);
        assert_eq!(levenshtein("book", "back"), 2);
    }

    #[test]
    fn empty_and_identity() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
    }

    #[test]
    fn symmetric() {
        assert_eq!(levenshtein("paris", "alice"), levenshtein("alice", "paris"));
    }

    #[test]
    fn unicode_counts_scalars_not_bytes() {
        // 'é' is two UTF-8 bytes but one edit.
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("日本語", "日本"), 1);
    }

    #[test]
    fn bounded_agrees_with_exact_within_bound() {
        let pairs = [
            ("kitten", "sitting"),
            ("abcdef", "abcdef"),
            ("", "xy"),
            ("similar", "dissimilar"),
            ("dlrid", "dealerid"),
        ];
        for (a, b) in pairs {
            let exact = levenshtein(a, b);
            for d in 0..=8 {
                let got = levenshtein_bounded(a, b, d);
                if exact <= d {
                    assert_eq!(got, Some(exact), "{a:?} vs {b:?} d={d}");
                } else {
                    assert_eq!(got, None, "{a:?} vs {b:?} d={d}");
                }
            }
        }
    }

    #[test]
    fn bounded_zero_distance() {
        assert_eq!(levenshtein_bounded("x", "x", 0), Some(0));
        assert_eq!(levenshtein_bounded("x", "y", 0), None);
        assert_eq!(levenshtein_bounded("", "", 0), Some(0));
    }

    #[test]
    fn length_gap_short_circuits() {
        assert_eq!(levenshtein_bounded("a", "abcdefgh", 3), None);
    }

    #[test]
    fn within_distance_boundary() {
        assert!(within_distance("bmw", "bmv", 1));
        assert!(!within_distance("bmw", "audi", 2));
        assert!(within_distance("bmw", "audi", 4));
    }
}
