//! Candidate pruning filters for q-gram matching (Gravano et al. \[7\]).
//!
//! Algorithm 2 of the paper applies, per retrieved posting, the *position*
//! filter and the *length* filter (line 8), and — across all probed grams —
//! the *count* filter. All three are **sound**: they never reject a pair with
//! `edit(s1, s2) <= d`. They are not complete; survivors still go through the
//! final edit-distance verification.

/// Configuration switching individual filters on and off.
///
/// All filters default to enabled; the ablation benches (`sqo-bench`) flip
/// them individually to measure how much candidate traffic each one saves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterConfig {
    pub length: bool,
    pub position: bool,
    pub count: bool,
}

impl Default for FilterConfig {
    fn default() -> Self {
        Self { length: true, position: true, count: true }
    }
}

impl FilterConfig {
    /// All filters disabled (every gram match becomes a candidate).
    pub fn none() -> Self {
        Self { length: false, position: false, count: false }
    }
}

/// Minimum number of q-grams two strings of lengths `len1`, `len2` must share
/// when their edit distance is at most `d` (unpadded overlapping q-grams):
///
/// ```text
/// max(len1, len2) - q + 1 - d·q
/// ```
///
/// A value `<= 0` means the filter cannot prune anything for these lengths.
/// See the crate docs for why this deviates from the paper's (typo'd)
/// formula.
///
/// ```
/// use sqo_strsim::count_filter_threshold;
/// // "abcde" vs one substitution: 5 - 2 + 1 - 1*2 = 2 shared bigrams required.
/// assert_eq!(count_filter_threshold(5, 5, 2, 1), 2);
/// assert!(count_filter_threshold(4, 4, 3, 2) <= 0);
/// ```
pub fn count_filter_threshold(len1: usize, len2: usize, q: usize, d: usize) -> i64 {
    let m = len1.max(len2) as i64;
    m - q as i64 + 1 - (d as i64) * (q as i64)
}

/// Length filter: strings within edit distance `d` differ in length by at
/// most `d`.
#[inline]
pub fn length_filter(len1: usize, len2: usize, d: usize) -> bool {
    len1.abs_diff(len2) <= d
}

/// Position filter: a q-gram common to two strings within distance `d`
/// cannot have shifted by more than `d` positions.
#[inline]
pub fn position_filter(pos1: u32, pos2: u32, d: usize) -> bool {
    (u64::from(pos1)).abs_diff(u64::from(pos2)) <= d as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit::levenshtein;
    use crate::qgram::qgrams;
    use std::collections::HashMap;

    /// Multiset intersection size of the two strings' q-gram bags.
    fn shared_qgrams(a: &str, b: &str, q: usize) -> usize {
        let mut bag: HashMap<String, usize> = HashMap::new();
        for g in qgrams(a, q) {
            *bag.entry(g.gram).or_insert(0) += 1;
        }
        let mut shared = 0;
        for g in qgrams(b, q) {
            if let Some(c) = bag.get_mut(&g.gram) {
                if *c > 0 {
                    *c -= 1;
                    shared += 1;
                }
            }
        }
        shared
    }

    #[test]
    fn count_bound_is_sound_on_examples() {
        let pairs = [
            ("abcde", "abxde"),
            ("similar", "simular"),
            ("querying", "queryng"),
            ("painting", "paintings"),
            ("overlay", "overlay"),
        ];
        for (a, b) in pairs {
            let d = levenshtein(a, b);
            for q in 2..4 {
                let bound = count_filter_threshold(a.len(), b.len(), q, d);
                let shared = shared_qgrams(a, b, q) as i64;
                assert!(
                    shared >= bound,
                    "bound violated: {a:?} {b:?} q={q} d={d} shared={shared} bound={bound}"
                );
            }
        }
    }

    #[test]
    fn papers_formula_would_be_unsound() {
        // Documented deviation: the paper's printed bound
        // max - 1 - (d-1)q rejects this true match at q=2, d=1.
        let (a, b) = ("abcde", "abxde");
        assert_eq!(levenshtein(a, b), 1);
        let paper_bound = a.len().max(b.len()) as i64 - 1;
        let shared = shared_qgrams(a, b, 2) as i64;
        assert!(shared < paper_bound, "expected the typo'd bound to over-prune");
        // Our bound keeps it.
        assert!(shared >= count_filter_threshold(a.len(), b.len(), 2, 1));
    }

    #[test]
    fn length_filter_basics() {
        assert!(length_filter(5, 5, 0));
        assert!(length_filter(5, 7, 2));
        assert!(!length_filter(5, 8, 2));
        assert!(length_filter(0, 3, 3));
    }

    #[test]
    fn position_filter_basics() {
        assert!(position_filter(4, 4, 0));
        assert!(position_filter(4, 6, 2));
        assert!(!position_filter(0, 3, 2));
    }

    #[test]
    fn default_config_enables_all() {
        let c = FilterConfig::default();
        assert!(c.length && c.position && c.count);
        let n = FilterConfig::none();
        assert!(!n.length && !n.position && !n.count);
    }
}
