//! `NetSim` — the virtual-time charger installed on an overlay network.
//!
//! Implements [`EventSink`]: every message the overlay simulates is stamped
//! onto a virtual clock using a pluggable [`LatencyModel`], optional
//! [`LossModel`] retransmissions, and a **per-peer serial service queue** —
//! each peer processes one message at a time, so concurrent queries landing
//! on the same hot peer wait behind each other exactly the way a single
//! request thread would make them in a deployment.
//!
//! ## Timing of one message `from → to`
//!
//! ```text
//! depart   = frontier (virtual time at the sender)
//! arrive   = depart + loss_timeouts + link_latency(from, to)
//! start    = max(arrive, busy_until[to])        <- serial queue
//! done     = start + service(bytes)
//! busy_until[to] = done; frontier = done
//! ```
//!
//! Fork/branch/join rewind the frontier to the fork point for every branch
//! and resume at the latest completion — the critical path of a parallel
//! fan-out. The per-peer queues are shared by *all* queries, which is where
//! cross-query contention (and the concurrent-workload p99 inflation the
//! driver measures) comes from.
//!
//! ## Relation to the sharded core's lookahead invariant
//!
//! `NetSim` is the *analytic* model: a whole overlay call folds its hops
//! into the clock at once, so it has no notion of events in flight and no
//! parallelism to exploit. The sharded core ([`crate::scale`]) is the
//! *message-level* model; its correctness rests on a property the latency
//! models here must uphold: **every link traversal takes at least the
//! model's minimum latency**. That minimum is the conservative lookahead
//! window — events within one window cannot affect each other across
//! peers, because any influence needs a message and every message takes
//! ≥ one window to arrive. A latency model offering zero-cost links would
//! shrink the safety window to nothing and serialize the sharded core;
//! keep configured minima ≥ 1 µs.

use crate::latency::{LatencyModel, LossModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqo_overlay::clock::{EventSink, MsgKind, SharedTraceSink, SimLatency, TraceEvent, TraceTrack};
use sqo_overlay::PeerId;

/// Everything configurable about the virtual-time model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    pub latency: LatencyModel,
    pub loss: LossModel,
    /// Fixed receiver CPU cost per message.
    pub service_us_per_msg: u64,
    /// Additional receiver cost per KiB of message body.
    pub service_us_per_kib: u64,
    /// Local-scan cost per stored entry touched.
    pub scan_us_per_item: u64,
    /// Seed of the sampling stream (jitter, loss).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            latency: LatencyModel::default(),
            loss: LossModel::default(),
            service_us_per_msg: 50,
            service_us_per_kib: 20,
            scan_us_per_item: 2,
            seed: 42,
        }
    }
}

/// Running decomposition of every frontier advance since the sink was
/// created: each `deliver`/`local_work`/forward `reset_to_us` moves the
/// frontier by exactly `net + queue + service + stall` microseconds, so a
/// query window's critical-path blame is the delta of this accumulator
/// across the window. Branch rewinds restore the fork-point value, which
/// keeps the accumulator in lockstep with the frontier through fan-outs.
#[derive(Debug, Default, Clone, Copy)]
struct Blame {
    net_us: u64,
    queue_us: u64,
    service_us: u64,
    stall_us: u64,
}

struct Fork {
    start_us: u64,
    max_end_us: u64,
    start_blame: Blame,
    max_end_blame: Blame,
}

/// The event-charging engine. Install on a network with
/// [`install`] or `Network::set_event_sink`.
pub struct NetSim {
    cfg: SimConfig,
    rng: StdRng,
    /// Virtual time at the query's point of control.
    frontier_us: u64,
    /// High-water mark over everything ever simulated (monotone).
    clock_us: u64,
    busy_until_us: Vec<u64>,
    forks: Vec<Fork>,
    /// Open query windows, innermost last. Operators nest windows (a join
    /// opens one, then its per-left-item selections open their own); an
    /// inner window closing folds its sums into the parent, so the
    /// outermost window sees the whole query — the same inclusion
    /// semantics as the traffic-snapshot deltas. The [`Blame`] is the
    /// accumulator snapshot at window open; closing takes the delta.
    windows: Vec<(SimLatency, usize, Blame)>,
    /// Critical-path blame accumulator (see [`Blame`]).
    blame: Blame,
    /// Lifetime totals across all top-level queries (never reset).
    totals: SimLatency,
    /// Optional structured-trace recorder (a clone of the network's):
    /// per-peer `wait`/service/`scan` spans render each peer's serial
    /// queue as a timeline. `None` costs one branch per event.
    tracer: Option<SharedTraceSink>,
}

impl NetSim {
    /// `n_peers` sizes the per-peer service queues.
    pub fn new(cfg: SimConfig, n_peers: usize) -> Self {
        Self {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            frontier_us: 0,
            clock_us: 0,
            busy_until_us: vec![0; n_peers],
            forks: Vec::new(),
            windows: Vec::new(),
            blame: Blame::default(),
            totals: SimLatency::default(),
            tracer: None,
        }
    }

    /// Attach a trace sink; subsequent deliveries and local scans emit
    /// per-peer occupancy spans into it. [`install`] wires the network's
    /// sink automatically.
    pub fn set_trace_sink(&mut self, tracer: SharedTraceSink) {
        self.tracer = Some(tracer);
    }

    /// Monotone high-water virtual time.
    pub fn clock_us(&self) -> u64 {
        self.clock_us
    }

    /// Swap the loss model mid-run (fault injection: transient loss
    /// spikes). Latency, service costs and the sampling stream are left
    /// untouched, so a spike that is later reverted to the baseline model
    /// perturbs only the traffic inside its window.
    pub fn set_loss_model(&mut self, loss: LossModel) {
        self.cfg.loss = loss;
    }

    /// Lifetime totals across every query charged to this sink.
    pub fn totals(&self) -> &SimLatency {
        &self.totals
    }

    fn service_us(&self, bytes: usize) -> u64 {
        self.cfg.service_us_per_msg + self.cfg.service_us_per_kib * (bytes as u64 / 1024)
    }

    /// Walk the sink into an owned [`NetSimState`] (checkpointing).
    ///
    /// Only legal at a **quiesce boundary**: no open query window and no
    /// open fork — the window stack holds borrow-like references into task
    /// state machines that cannot be serialized. The driver guarantees this
    /// by pausing only when every in-flight slot is empty.
    pub fn export_state(&self) -> NetSimState {
        assert!(self.windows.is_empty(), "cannot checkpoint inside an open query window");
        assert!(self.forks.is_empty(), "cannot checkpoint inside an open fork");
        NetSimState {
            rng: self.rng.state_words(),
            frontier_us: self.frontier_us,
            clock_us: self.clock_us,
            busy_until_us: self.busy_until_us.clone(),
            blame: [
                self.blame.net_us,
                self.blame.queue_us,
                self.blame.service_us,
                self.blame.stall_us,
            ],
            totals: self.totals,
        }
    }

    /// Rebuild a sink from an exported image. `cfg` is supplied by the
    /// caller (the snapshot artifact carries dynamic state only; resuming
    /// against a different latency model is a different experiment and
    /// diverges by design).
    pub fn from_state(cfg: SimConfig, state: NetSimState) -> Self {
        Self {
            rng: StdRng::from_state_words(state.rng),
            cfg,
            frontier_us: state.frontier_us,
            clock_us: state.clock_us,
            busy_until_us: state.busy_until_us,
            forks: Vec::new(),
            windows: Vec::new(),
            blame: Blame {
                net_us: state.blame[0],
                queue_us: state.blame[1],
                service_us: state.blame[2],
                stall_us: state.blame[3],
            },
            totals: state.totals,
            tracer: None,
        }
    }
}

/// The owned image of a [`NetSim`] at a quiesce boundary: the sampling
/// stream's position, both clocks, every peer's serial-queue backlog, and
/// the lifetime accumulators. Window/fork stacks are empty by construction
/// (see [`NetSim::export_state`]).
#[derive(Debug, Clone, PartialEq)]
pub struct NetSimState {
    /// xoshiro256++ state words of the jitter/loss stream.
    pub rng: [u64; 4],
    pub frontier_us: u64,
    pub clock_us: u64,
    pub busy_until_us: Vec<u64>,
    /// Critical-path blame accumulator as `[net, queue, service, stall]`.
    pub blame: [u64; 4],
    pub totals: SimLatency,
}

impl EventSink for NetSim {
    fn begin_query(&mut self) {
        self.windows.push((
            SimLatency { start_us: self.frontier_us, ..SimLatency::default() },
            self.forks.len(),
            self.blame,
        ));
    }

    fn end_query(&mut self) -> SimLatency {
        let (mut cur, fork_depth, open_blame) =
            self.windows.pop().expect("end_query without begin_query");
        debug_assert_eq!(self.forks.len(), fork_depth, "window closed inside an open fork");
        // Self-heal in release builds: a fork left open by an early return
        // inside the window must not let later queries rewind to a stale
        // fork point — drop the leaked forks so corruption cannot outlive
        // the query that caused it.
        self.forks.truncate(fork_depth);
        cur.end_us = self.frontier_us;
        cur.elapsed_us = cur.end_us.saturating_sub(cur.start_us);
        // Critical-path blame: the accumulator delta across the window
        // decomposes the frontier advance itself, so the four shares sum to
        // `elapsed_us` exactly (losing fan-out branches contribute nothing).
        cur.crit_net_us = self.blame.net_us.saturating_sub(open_blame.net_us);
        cur.crit_queue_us = self.blame.queue_us.saturating_sub(open_blame.queue_us);
        cur.crit_service_us = self.blame.service_us.saturating_sub(open_blame.service_us);
        cur.crit_stall_us = self.blame.stall_us.saturating_sub(open_blame.stall_us);
        match self.windows.last_mut() {
            // Fold the inner window's sums (not its wall-clock span, which
            // the parent's own start/end already covers) into the parent.
            // The `crit_*` deltas are not folded: the parent's own
            // accumulator delta already includes the inner activity.
            Some((parent, _, _)) => {
                parent.net_us += cur.net_us;
                parent.queue_us += cur.queue_us;
                parent.service_us += cur.service_us;
                parent.route_us += cur.route_us;
                parent.forward_us += cur.forward_us;
                parent.result_us += cur.result_us;
                parent.timed_messages += cur.timed_messages;
                parent.retransmissions += cur.retransmissions;
            }
            None => self.totals.absorb(&cur),
        }
        cur
    }

    fn deliver(&mut self, from: PeerId, to: PeerId, bytes: usize, kind: MsgKind) {
        let depart = self.frontier_us;
        let (loss_us, retx) = self.cfg.loss.sample(&mut self.rng);
        let link = self.cfg.latency.sample(from, to, &mut self.rng);
        let arrive = depart + loss_us + link;
        let start = arrive.max(self.busy_until_us[to.index()]);
        let service = self.service_us(bytes);
        let done = start + service;
        self.busy_until_us[to.index()] = done;
        self.frontier_us = done;
        self.clock_us = self.clock_us.max(done);

        self.blame.net_us += loss_us + link;
        self.blame.queue_us += start - arrive;
        self.blame.service_us += service;

        if let Some(t) = &self.tracer {
            let mut tr = t.borrow_mut();
            if start > arrive {
                // Queueing behind the receiver's serial service queue.
                tr.record(
                    TraceEvent::span(arrive, start - arrive, TraceTrack::Peer(to), "wait", "net")
                        .arg("from", from.index())
                        .arg("cause", "busy-receiver"),
                );
            }
            tr.record(
                TraceEvent::span(start, service, TraceTrack::Peer(to), kind.label(), "net")
                    .arg("from", from.index())
                    .arg("bytes", bytes),
            );
        }

        if let Some((cur, _, _)) = self.windows.last_mut() {
            cur.net_us += loss_us + link;
            cur.queue_us += start - arrive;
            cur.service_us += service;
            cur.timed_messages += 1;
            cur.retransmissions += retx as u64;
            let span = done - depart;
            match kind {
                MsgKind::Route => cur.route_us += span,
                MsgKind::Forward => cur.forward_us += span,
                MsgKind::Result => cur.result_us += span,
            }
        }
    }

    fn local_work(&mut self, peer: PeerId, items: u64) {
        let cost = self.cfg.scan_us_per_item * items;
        if cost == 0 {
            return;
        }
        let start = self.frontier_us.max(self.busy_until_us[peer.index()]);
        let done = start + cost;
        self.blame.queue_us += start - self.frontier_us;
        self.blame.service_us += cost;
        if let Some(t) = &self.tracer {
            t.borrow_mut().record(
                TraceEvent::span(start, cost, TraceTrack::Peer(peer), "scan", "net")
                    .arg("items", items),
            );
        }
        if let Some((cur, _, _)) = self.windows.last_mut() {
            cur.queue_us += start - self.frontier_us;
            cur.service_us += cost;
        }
        self.busy_until_us[peer.index()] = done;
        self.frontier_us = done;
        self.clock_us = self.clock_us.max(done);
    }

    fn fork(&mut self) {
        self.forks.push(Fork {
            start_us: self.frontier_us,
            max_end_us: self.frontier_us,
            start_blame: self.blame,
            max_end_blame: self.blame,
        });
    }

    fn branch(&mut self) {
        let f = self.forks.last_mut().expect("branch outside a fork");
        if self.frontier_us > f.max_end_us {
            f.max_end_us = self.frontier_us;
            f.max_end_blame = self.blame;
        }
        self.frontier_us = f.start_us;
        self.blame = f.start_blame;
    }

    fn join(&mut self) {
        let f = self.forks.pop().expect("join outside a fork");
        if f.max_end_us > self.frontier_us {
            // A previous branch wins the critical path: its blame
            // decomposition travels with its frontier.
            self.frontier_us = f.max_end_us;
            self.blame = f.max_end_blame;
        }
    }

    fn now_us(&self) -> u64 {
        self.frontier_us
    }

    fn reset_to_us(&mut self, t_us: u64) {
        // May rewind relative to a previously *simulated* query — that is
        // how overlapping arrivals are expressed — but never rewinds the
        // global high-water clock. A *forward* jump while a window is open
        // is waiting on the driver clock (a scheduling gap inside the
        // window): charge it to stall so the blame sum keeps covering the
        // frontier advance. Backward jumps leave the accumulator alone —
        // they only ever happen between windows.
        if t_us > self.frontier_us && !self.windows.is_empty() {
            self.blame.stall_us += t_us - self.frontier_us;
        }
        self.frontier_us = t_us;
        self.clock_us = self.clock_us.max(t_us);
    }

    fn busy_until_us(&self, peer: PeerId) -> u64 {
        self.busy_until_us[peer.index()]
    }

    /// Checkpointing downcast hook: lets the driver reach the concrete
    /// `NetSim` behind the network's `Box<dyn EventSink>` to export its
    /// state.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// Install a fresh [`NetSim`] with `cfg` on the engine's network. Replaces
/// any previously installed sink; subsequent queries report
/// `QueryStats::sim`.
pub fn install(engine: &mut sqo_core::SimilarityEngine, cfg: SimConfig) {
    let n = engine.network().peer_count();
    let mut sim = NetSim::new(cfg, n);
    if let Some(t) = engine.network().trace_sink() {
        sim.set_trace_sink(t);
    }
    engine.network_mut().set_event_sink(Box::new(sim));
}

/// Install a [`NetSim`] restored from a checkpoint image on the engine's
/// network — the resume-side counterpart of [`install`]. The restored sink
/// continues the sampling stream, serial queues and clocks exactly where
/// the exported one stopped.
pub fn install_restored(
    engine: &mut sqo_core::SimilarityEngine,
    cfg: SimConfig,
    state: NetSimState,
) {
    assert_eq!(
        state.busy_until_us.len(),
        engine.network().peer_count(),
        "checkpoint was taken on a network with a different peer count"
    );
    let mut sim = NetSim::from_state(cfg, state);
    if let Some(t) = engine.network().trace_sink() {
        sim.set_trace_sink(t);
    }
    engine.network_mut().set_event_sink(Box::new(sim));
}

/// Export the state of the `NetSim` installed on the engine's network, if
/// one is installed. Uses the [`EventSink::as_any_mut`] downcast hook.
pub fn export_installed(engine: &mut sqo_core::SimilarityEngine) -> Option<NetSimState> {
    let sink = engine.network_mut().event_sink_mut()?;
    let sim = sink.as_any_mut()?.downcast_mut::<NetSim>()?;
    Some(sim.export_state())
}

/// Swap the loss model of the installed `NetSim`, if one is installed —
/// the driver's hook for [`FaultKind::LossSpike`](crate::FaultKind)
/// events. Returns `false` when no `NetSim` sink is present.
pub fn set_installed_loss(engine: &mut sqo_core::SimilarityEngine, loss: LossModel) -> bool {
    let Some(sink) = engine.network_mut().event_sink_mut() else { return false };
    let Some(any) = sink.as_any_mut() else { return false };
    let Some(sim) = any.downcast_mut::<NetSim>() else { return false };
    sim.set_loss_model(loss);
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(latency_us: u64) -> NetSim {
        NetSim::new(
            SimConfig {
                latency: LatencyModel::Constant { us: latency_us },
                service_us_per_msg: 10,
                service_us_per_kib: 0,
                scan_us_per_item: 1,
                ..SimConfig::default()
            },
            8,
        )
    }

    #[test]
    fn sequential_hops_add_up() {
        let mut s = sim(100);
        s.begin_query();
        s.deliver(PeerId(0), PeerId(1), 48, MsgKind::Route);
        s.deliver(PeerId(1), PeerId(2), 48, MsgKind::Route);
        let lat = s.end_query();
        assert_eq!(lat.elapsed_us, 2 * (100 + 10));
        assert_eq!(lat.timed_messages, 2);
        assert_eq!(lat.route_us, 220);
        assert_eq!(lat.queue_us, 0);
    }

    #[test]
    fn fork_takes_the_critical_path_not_the_sum() {
        let mut s = sim(100);
        s.begin_query();
        s.fork();
        // Branch 1: one hop (110 us). Branch 2: two hops (220 us).
        s.branch();
        s.deliver(PeerId(0), PeerId(1), 0, MsgKind::Forward);
        s.branch();
        s.deliver(PeerId(0), PeerId(2), 0, MsgKind::Forward);
        s.deliver(PeerId(2), PeerId(3), 0, MsgKind::Result);
        s.join();
        let lat = s.end_query();
        assert_eq!(lat.elapsed_us, 220, "join must take the max branch, not 330");
        assert_eq!(lat.timed_messages, 3);
    }

    #[test]
    fn serial_queue_delays_messages_to_a_busy_peer() {
        let mut s = sim(100);
        // Query A occupies peer 5 until t = 110.
        s.begin_query();
        s.deliver(PeerId(0), PeerId(5), 0, MsgKind::Route);
        let a = s.end_query();
        assert_eq!(a.end_us, 110);
        // Query B arrives at t = 0 too; its message reaches peer 5 at 100
        // but must wait for A's service to finish at 110.
        s.reset_to_us(0);
        s.begin_query();
        s.deliver(PeerId(1), PeerId(5), 0, MsgKind::Route);
        let b = s.end_query();
        assert_eq!(b.queue_us, 10);
        assert_eq!(b.end_us, 120);
    }

    #[test]
    fn local_work_occupies_the_peer() {
        let mut s = sim(100);
        s.begin_query();
        s.local_work(PeerId(3), 50);
        let lat = s.end_query();
        assert_eq!(lat.elapsed_us, 50);
        assert_eq!(lat.service_us, 50);
    }

    #[test]
    fn nested_windows_fold_into_the_parent() {
        let mut s = sim(100);
        s.begin_query(); // outer (a join)
        s.deliver(PeerId(0), PeerId(1), 0, MsgKind::Route);
        s.begin_query(); // inner (per-left selection)
        s.deliver(PeerId(1), PeerId(2), 0, MsgKind::Route);
        let inner = s.end_query();
        assert_eq!(inner.timed_messages, 1);
        assert_eq!(inner.elapsed_us, 110);
        let outer = s.end_query();
        assert_eq!(outer.timed_messages, 2, "outer window includes inner activity");
        assert_eq!(outer.elapsed_us, 220);
        assert_eq!(outer.start_us, 0);
        // Lifetime totals count the top-level query once, not twice.
        assert_eq!(s.totals().timed_messages, 2);
    }

    #[test]
    fn blame_decomposition_covers_the_critical_path() {
        let mut s = sim(100);
        // Warm up the queue on peer 5 so the second query sees queue wait.
        s.begin_query();
        s.deliver(PeerId(0), PeerId(5), 0, MsgKind::Route);
        s.end_query();
        s.reset_to_us(0);
        s.begin_query();
        s.deliver(PeerId(1), PeerId(5), 0, MsgKind::Route);
        s.fork();
        s.branch();
        s.deliver(PeerId(5), PeerId(1), 0, MsgKind::Forward);
        s.branch();
        s.deliver(PeerId(5), PeerId(2), 0, MsgKind::Forward);
        s.deliver(PeerId(2), PeerId(3), 0, MsgKind::Result);
        s.join();
        s.local_work(PeerId(3), 7);
        let lat = s.end_query();
        assert_eq!(
            lat.crit_net_us + lat.crit_queue_us + lat.crit_service_us + lat.crit_stall_us,
            lat.elapsed_us,
            "blame shares must sum to the window's critical path: {lat:?}"
        );
        assert_eq!(lat.crit_queue_us, 10, "the 10us wait behind the warm-up query");
        assert_eq!(lat.crit_net_us, 300, "three link hops on the winning branch");
        assert_eq!(lat.crit_stall_us, 0);
    }

    #[test]
    fn forward_reset_inside_a_window_counts_as_stall() {
        let mut s = sim(100);
        s.begin_query();
        s.deliver(PeerId(0), PeerId(1), 0, MsgKind::Route);
        s.reset_to_us(1_000); // driver jumps the clock mid-window
        s.deliver(PeerId(1), PeerId(2), 0, MsgKind::Route);
        let lat = s.end_query();
        assert_eq!(lat.crit_stall_us, 1_000 - 110);
        assert_eq!(
            lat.crit_net_us + lat.crit_queue_us + lat.crit_service_us + lat.crit_stall_us,
            lat.elapsed_us
        );
    }

    /// A restored sink must continue the jitter stream, serial queues and
    /// clocks exactly — identical subsequent traffic charges identically.
    #[test]
    fn state_round_trip_continues_charging_identically() {
        let cfg = SimConfig {
            latency: LatencyModel::Uniform { min_us: 50, max_us: 250 },
            ..SimConfig::default()
        };
        let mut a = NetSim::new(cfg, 8);
        // Warm up: some queries, including queue contention and a rewind.
        for i in 0..5u32 {
            a.begin_query();
            a.deliver(PeerId(0), PeerId(1 + (i % 3)), 256, MsgKind::Route);
            a.deliver(PeerId(1), PeerId(5), 0, MsgKind::Forward);
            a.local_work(PeerId(5), 20);
            a.end_query();
            a.reset_to_us(100 * u64::from(i));
        }

        let state = a.export_state();
        let mut b = NetSim::from_state(cfg, state.clone());
        assert_eq!(b.export_state(), state, "export/import/export must be a fixed point");

        // Identical traffic on both sinks from here on.
        let drive = |s: &mut NetSim| {
            let mut lats = Vec::new();
            for i in 0..4u32 {
                s.begin_query();
                s.deliver(PeerId(2), PeerId(6), 1024, MsgKind::Route);
                s.fork();
                s.branch();
                s.deliver(PeerId(6), PeerId(7), 64, MsgKind::Forward);
                s.branch();
                s.deliver(PeerId(6), PeerId(3), 64, MsgKind::Forward);
                s.join();
                lats.push(s.end_query());
                s.reset_to_us(50 * u64::from(i));
            }
            lats
        };
        assert_eq!(drive(&mut a), drive(&mut b), "restored sink diverged from the original");
        assert_eq!(b.export_state(), a.export_state());
    }

    #[test]
    #[should_panic(expected = "open query window")]
    fn export_inside_a_window_is_refused() {
        let mut s = sim(100);
        s.begin_query();
        let _ = s.export_state();
    }

    #[test]
    fn clock_high_water_is_monotone_under_rewinds() {
        let mut s = sim(100);
        s.begin_query();
        s.deliver(PeerId(0), PeerId(1), 0, MsgKind::Route);
        s.end_query();
        let high = s.clock_us();
        s.reset_to_us(0);
        assert_eq!(s.now_us(), 0);
        assert!(s.clock_us() >= high, "high-water clock must not rewind");
    }
}
