//! `ScaleSim` — the sharded parallel event core for very large overlays.
//!
//! [`NetSim`](crate::NetSim) charges virtual time *analytically*: a whole
//! `Retrieve` (route chain, shower fan-out, replies) is folded into the
//! clock inside one engine call. That is exact for latency accounting but
//! serializes everything through one event loop and one mutable network.
//! `ScaleSim` decomposes retrieval into **true per-message events** — every
//! route hop, shower forward and result reply is its own event against a
//! read-only [`Topology`] snapshot — and executes them on a
//! **conservatively windowed, sharded core** that scales to 10⁵–10⁶ peers.
//!
//! ## The lookahead invariant
//!
//! Peers are partitioned into shards (`peer % shards`). Each shard keeps
//! its pending events in a calendar ring of windowed buckets of width
//! `W ≤ service_us + link_min_us` — the **lower bound on how far ahead
//! any event can schedule another** (a receiver serves for `service_us`,
//! then the follow-up message travels at least `link_min_us`; `W` is the
//! largest power of two under that bound, so window arithmetic is a
//! shift). The core advances window by window: within window `k`
//! (`[kW, (k+1)W)`) every shard processes its own bucket independently —
//! no locks, no cross-shard reads — because any message emitted by an
//! event at time `t ∈ [kW, (k+1)W)` arrives at
//!
//! ```text
//! arrival = service_completion + link_latency ≥ t + service + link_min ≥ (k+1)W
//! ```
//!
//! i.e. strictly after the current window. In threaded execution,
//! emissions cross shards through per-destination mailboxes exchanged at
//! the window barrier; single-threaded, they insert directly into the
//! destination ring (legal for the same reason: they can only land in
//! windows not yet swept). This is the classic conservative
//! (Chandy–Misra-style) lookahead argument with the minimum
//! service-plus-link time as the safety window; a `debug_assert` enforces
//! it on every emission.
//!
//! ## Determinism
//!
//! Within a window each shard sorts its bucket by the global event key
//! `(at_us, qid, step)` — `(qid, step)` is unique per message, so the key
//! is total; every per-decision random draw is a **stateless hash** of
//! `(seed, qid, step)` rather than a shared RNG stream. A peer's event sequence — and therefore its `busy_until`
//! evolution — is thus identical for *any* shard count and for threaded
//! or single-threaded execution, and the run's [`ScaleOutcome`] (event
//! count, completion times, checksum) is bit-identical across all of them
//! (pinned by the `scale_smoke` tests). The serial baseline
//! ([`run_serial`]) executes the same events on one global binary heap
//! ordered by the same key, so it produces the same outcome by
//! construction — what differs is wall-clock: windowed bucket sorting
//! beats per-event heap churn even on one core, and threads parallelize
//! shards on many.

use serde::Serialize;
use sqo_obs::MetricsRegistry;
use sqo_overlay::peer::Item;
use sqo_overlay::{Key, Network, PeerId};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

// ----------------------------------------------------------------------
// Topology: the read-only overlay snapshot
// ----------------------------------------------------------------------

/// An immutable snapshot of an overlay network's structure: partition
/// paths, peer→partition assignment, the flattened routing arena and the
/// per-partition member lists — everything message-level simulation needs,
/// nothing it can mutate. Snapshotting decouples the event core from the
/// network's interior mutability (metrics, RNG), which is what lets shards
/// share one topology across threads without locks.
pub struct Topology {
    paths: Vec<Key>,
    /// Peer → partition index.
    part_of: Vec<u32>,
    /// Flattened routing tables, the same three-vector layout as
    /// [`RoutingArena`](sqo_overlay::RoutingArena).
    refs: Vec<u32>,
    slice_off: Vec<u32>,
    peer_off: Vec<u32>,
    /// Flattened partition member lists.
    members: Vec<u32>,
    member_off: Vec<u32>,
    /// Stored (key, item) pairs per partition — the local-scan cost input.
    items_per_part: Vec<u32>,
}

impl Topology {
    /// Snapshot `net`'s structure.
    pub fn of_network<T: Item>(net: &Network<T>) -> Self {
        let peers = net.peer_count();
        let parts = net.partition_count();
        let arena = net.routing_arena();

        let mut part_of = vec![0u32; peers];
        let mut members = Vec::with_capacity(peers);
        let mut member_off = Vec::with_capacity(parts + 1);
        let mut items_per_part = Vec::with_capacity(parts);
        member_off.push(0u32);
        for part in 0..parts {
            let ms = net.partition_members(part);
            for &m in ms {
                part_of[m.index()] = part as u32;
                members.push(m.0);
            }
            member_off.push(members.len() as u32);
            items_per_part.push(ms.first().map(|&m| net.peer(m).item_count() as u32).unwrap_or(0));
        }

        let mut refs = Vec::with_capacity(arena.total_refs());
        let mut slice_off = vec![0u32];
        let mut peer_off = vec![0u32];
        for p in 0..peers {
            let pid = PeerId(p as u32);
            for l in 0..arena.levels(pid) {
                refs.extend(arena.refs(pid, l).iter().map(|r| r.0));
                slice_off.push(refs.len() as u32);
            }
            peer_off.push(slice_off.len() as u32 - 1);
        }

        Self {
            paths: net.paths().to_vec(),
            part_of,
            refs,
            slice_off,
            peer_off,
            members,
            member_off,
            items_per_part,
        }
    }

    pub fn peer_count(&self) -> usize {
        self.part_of.len()
    }

    pub fn partition_count(&self) -> usize {
        self.paths.len()
    }

    fn level_refs(&self, p: u32, l: usize) -> &[u32] {
        let base = self.peer_off[p as usize] as usize + l;
        if base >= self.peer_off[p as usize + 1] as usize {
            return &[];
        }
        &self.refs[self.slice_off[base] as usize..self.slice_off[base + 1] as usize]
    }

    fn part_members(&self, part: u32) -> &[u32] {
        &self.members
            [self.member_off[part as usize] as usize..self.member_off[part as usize + 1] as usize]
    }

    /// Contiguous partition range `[s, e)` whose paths `key` covers.
    fn subtree_of(&self, key: &Key) -> (u32, u32) {
        let (s, e) = sqo_overlay::trie::subtree_range(&self.paths, key);
        (s as u32, e as u32)
    }
}

// ----------------------------------------------------------------------
// Configuration and events
// ----------------------------------------------------------------------

/// Workload + timing model of a `ScaleSim` run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ScaleConfig {
    /// Number of retrieve queries to drive (the simulated client load).
    pub queries: usize,
    /// Shard count of the windowed core ([`run_sharded`]); clamped to ≥ 1.
    pub shards: usize,
    /// Execute shards on OS threads (one per shard, barrier-synchronized).
    /// The outcome is identical either way; wall-clock gains require
    /// multiple cores.
    pub threads: bool,
    /// Stateless-randomness seed (initiators, targets, jitter draws).
    pub seed: u64,
    /// Minimum link latency — together with `service_us` it bounds the
    /// conservative window width from above.
    pub link_min_us: u64,
    /// Uniform jitter added on top of the minimum, per message.
    pub link_jitter_us: u64,
    /// Receiver service cost per message.
    pub service_us: u64,
    /// Local-scan cost per stored entry at the responding partition.
    pub scan_us_per_item: u64,
    /// Query arrivals are spread uniformly over `[0, arrival_spread_us)`.
    pub arrival_spread_us: u64,
    /// Up to this many trailing bits are trimmed from a query's target
    /// path (draw-dependent), turning the exact-key lookup into a shallow
    /// prefix query that showers over the covered subtree.
    pub shower_trim_bits: u32,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        Self {
            queries: 1_000,
            shards: 2,
            threads: false,
            seed: 7,
            link_min_us: 500,
            link_jitter_us: 1_500,
            service_us: 50,
            scan_us_per_item: 2,
            arrival_spread_us: 100_000,
            shower_trim_bits: 2,
        }
    }
}

/// One in-flight message. The event key `(at_us, qid, step, peer)` is the
/// global deterministic order; `step` is unique per message within a query
/// by construction (route hops count up; a shower's forwards take the
/// `fanout` steps after the owner's, forward replies shift past both).
#[derive(Debug, Clone, Copy)]
struct Ev {
    at_us: u64,
    qid: u32,
    step: u32,
    peer: u32,
    kind: EvKind,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EvKind {
    /// A routed query message arriving at a peer.
    Query,
    /// A shower forward into a sibling partition; the receiver scans
    /// locally and replies to the initiator.
    Forward,
    /// A partial result arriving at the initiator. The owner's own reply
    /// announces the expected total (`of = fanout`); sibling replies carry
    /// `of = 0` — the initiator reconciles both arrival orders.
    Result { of: u32 },
}

impl Ev {
    #[inline]
    fn key(&self) -> (u64, u32, u32, u32) {
        (self.at_us, self.qid, self.step, self.peer)
    }

    /// [`Ev::key`] packed into one `u128`. `(qid, step)` is unique per
    /// message, so dropping `peer` loses nothing and the window sort
    /// compares branchlessly. Orders identically to [`Ev::key`] — the
    /// serial heap and the windowed core must agree on event order.
    #[inline]
    fn key128(&self) -> u128 {
        ((self.at_us as u128) << 64) | ((self.qid as u128) << 32) | self.step as u128
    }
}

/// Shift separating forward-reply steps from forward steps (bounds shower
/// fan-out; asserted at emission).
const REPLY_STEP_SHIFT: u32 = 1 << 20;

/// Read-only per-query plan, fixed at arrival time.
struct QInfo {
    initiator: u32,
    key: Key,
}

/// Mutable per-query progress, owned by the initiator's shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct QState {
    /// Expected result count, 0 until the owner's reply announces it.
    expected: u32,
    /// Results received so far.
    got: u32,
    /// Virtual completion time (0 = not complete).
    done_us: u64,
}

/// Stateless draw from `(seed, qid, step, salt)` — identical for every
/// shard count and execution order by construction. Lives in the shared
/// [`crate::seed`] module (its output is pinned by the `ScaleOutcome`
/// checksum).
use crate::seed::mix;

// ----------------------------------------------------------------------
// The event handler (identical for every execution engine)
// ----------------------------------------------------------------------

/// Mutable simulation state as seen by the handler. The serial engine
/// backs it with whole-network vectors; a shard backs it with its own
/// stride-indexed slices — the handler cannot tell the difference, which
/// is precisely the determinism argument.
trait SimState {
    fn busy_mut(&mut self, peer: u32) -> &mut u64;
    fn qstate_mut(&mut self, qid: u32) -> &mut QState;
}

/// Shared, read-only inputs of a run.
struct RunCtx<'a> {
    topo: &'a Topology,
    cfg: &'a ScaleConfig,
    qinfo: Vec<QInfo>,
}

impl RunCtx<'_> {
    /// Per-message link latency: the configured minimum (clamped to ≥ 1 —
    /// the windowed core's safety width must be positive) plus a stateless
    /// uniform jitter draw.
    #[inline]
    fn latency(&self, qid: u32, step: u32) -> u64 {
        self.cfg.link_min_us.max(1)
            + mix(self.cfg.seed, qid, step, 0xA11C).wrapping_rem(self.cfg.link_jitter_us + 1)
    }

    /// Process one message arrival: serial service at the receiving peer,
    /// then emission of the follow-up messages (each ≥ `link_min_us`
    /// ahead — the lookahead invariant).
    fn handle<S: SimState>(&self, ev: Ev, st: &mut S, emit: &mut impl FnMut(Ev)) {
        let cfg = self.cfg;
        let topo = self.topo;
        let q = &self.qinfo[ev.qid as usize];
        // One borrow of the peer's slot for the whole event: the sharded
        // state's stride indexing is paid once, not per touch.
        let busy = st.busy_mut(ev.peer);
        let start = ev.at_us.max(*busy);
        match ev.kind {
            EvKind::Query => {
                let done = start + cfg.service_us;
                *busy = done;
                let path = &topo.paths[topo.part_of[ev.peer as usize] as usize];
                if path.is_prefix_of(&q.key) || q.key.is_prefix_of(path) {
                    // Owner: shower over the covered subtree. The own
                    // partition scans inline; every sibling partition gets
                    // one forward.
                    let (s, e) = topo.subtree_of(&q.key);
                    let own = topo.part_of[ev.peer as usize];
                    let fanout = e - s;
                    debug_assert!(
                        (s..e).contains(&own),
                        "owner's partition lies in its own subtree"
                    );
                    debug_assert!(fanout < REPLY_STEP_SHIFT, "shower fan-out exceeds step space");
                    let mut j = 0u32;
                    let mut scan_done = done;
                    for part in s..e {
                        if part == own {
                            scan_done +=
                                cfg.scan_us_per_item * topo.items_per_part[part as usize] as u64;
                            continue;
                        }
                        let fstep = ev.step + 1 + j;
                        j += 1;
                        let ms = topo.part_members(part);
                        let responder = ms[mix(cfg.seed, ev.qid, fstep, 0xF0) as usize % ms.len()];
                        emit(Ev {
                            at_us: done + self.latency(ev.qid, fstep),
                            qid: ev.qid,
                            step: fstep,
                            peer: responder,
                            kind: EvKind::Forward,
                        });
                    }
                    // The owner's local scan occupies it beyond the plain
                    // message service before its own reply departs.
                    *busy = scan_done;
                    let rstep = ev.step + 1 + fanout;
                    emit(Ev {
                        at_us: scan_done + self.latency(ev.qid, rstep),
                        qid: ev.qid,
                        step: rstep,
                        peer: q.initiator,
                        kind: EvKind::Result { of: fanout },
                    });
                } else {
                    // Route hop: the first differing level picks the next
                    // reference (Algorithm 1, stateless draw).
                    let l = path.common_prefix_len(&q.key);
                    let refs = topo.level_refs(ev.peer, l);
                    debug_assert!(!refs.is_empty(), "complete cover wires every level");
                    let next = refs[mix(cfg.seed, ev.qid, ev.step, 0x11) as usize % refs.len()];
                    emit(Ev {
                        at_us: done + self.latency(ev.qid, ev.step + 1),
                        qid: ev.qid,
                        step: ev.step + 1,
                        peer: next,
                        kind: EvKind::Query,
                    });
                }
            }
            EvKind::Forward => {
                let part = topo.part_of[ev.peer as usize];
                let done = start
                    + cfg.service_us
                    + cfg.scan_us_per_item * topo.items_per_part[part as usize] as u64;
                *busy = done;
                let rstep = ev.step + REPLY_STEP_SHIFT;
                emit(Ev {
                    at_us: done + self.latency(ev.qid, rstep),
                    qid: ev.qid,
                    step: rstep,
                    peer: q.initiator,
                    kind: EvKind::Result { of: 0 },
                });
            }
            EvKind::Result { of } => {
                let done = start + cfg.service_us;
                *busy = done;
                let qs = st.qstate_mut(ev.qid);
                qs.got += 1;
                if of > 0 {
                    debug_assert_eq!(qs.expected, 0, "only the owner announces the fan-out");
                    qs.expected = of;
                }
                if qs.expected > 0 && qs.got == qs.expected && qs.done_us == 0 {
                    qs.done_us = done;
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Outcomes
// ----------------------------------------------------------------------

/// The deterministic half of a run: bit-identical for the serial baseline
/// and every sharded/threaded configuration — the invariant the
/// determinism tests pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ScaleOutcome {
    /// Queries that saw all their expected results.
    pub queries_done: u64,
    /// Total message events processed.
    pub events: u64,
    /// Latest completion (virtual µs).
    pub max_done_us: u64,
    /// Sum of completion times (virtual µs, wrapping).
    pub sum_done_us: u64,
    /// FNV-1a over `(qid, done_us)` of all completed queries.
    pub checksum: u64,
}

/// The performance half: wall-clock measurements of one engine run, plus
/// the per-shard telemetry of the windowed core (how evenly the event
/// load spread, how often the conservative lookahead swept an empty
/// window, how much crossed shards through mailboxes). None of it feeds
/// back into the simulation — [`ScaleOutcome`] stays bit-identical.
#[derive(Debug, Clone, Serialize)]
pub struct ScaleRun {
    /// `"serial"` (global binary heap) or `"sharded"` (windowed core).
    pub mode: String,
    pub shards: usize,
    pub threads: bool,
    pub events: u64,
    pub elapsed_ms: f64,
    pub events_per_sec: f64,
    /// Events processed by each shard (one entry per shard; the serial
    /// engine reports a single entry).
    pub events_per_shard: Vec<u64>,
    /// Conservative windows swept, summed over shards (0 for serial).
    pub windows_swept: u64,
    /// Swept windows whose bucket was empty — the conservative lookahead's
    /// stall counter: barriers crossed with nothing to do.
    pub empty_windows: u64,
    /// Events that crossed shards through mailboxes (threaded runs only;
    /// the single-threaded core inserts directly into destination rings).
    pub mailbox_events: u64,
    /// Deepest single mailbox drain observed (threaded runs only).
    pub mailbox_peak: u64,
}

impl ScaleRun {
    /// Fold this run into a metrics registry under the `sim.*` schema:
    /// throughput and RSS gauges, plus the `sim.shard.*` occupancy /
    /// imbalance gauges, window-stall counters, mailbox depths and the
    /// events-per-shard histogram.
    pub fn export_metrics(&self, m: &mut MetricsRegistry) {
        m.gauge_set("sim.events_per_sec", self.events_per_sec);
        if let Some(rss) = rss_peak_bytes() {
            m.gauge_set("sim.rss_peak_bytes", rss as f64);
        }
        if self.events_per_shard.is_empty() {
            return;
        }
        let max = self.events_per_shard.iter().copied().max().unwrap_or(0);
        let min = self.events_per_shard.iter().copied().min().unwrap_or(0);
        let mean = self.events as f64 / self.events_per_shard.len() as f64;
        m.gauge_set("sim.shard.count", self.events_per_shard.len() as f64);
        m.gauge_set("sim.shard.events_max", max as f64);
        m.gauge_set("sim.shard.events_min", min as f64);
        m.gauge_set("sim.shard.imbalance", if mean > 0.0 { max as f64 / mean } else { 1.0 });
        m.gauge_set("sim.shard.mailbox_peak", self.mailbox_peak as f64);
        m.counter_add("sim.shard.windows_swept", self.windows_swept);
        m.counter_add("sim.shard.empty_windows", self.empty_windows);
        m.counter_add("sim.shard.mailbox_events", self.mailbox_events);
        for &e in &self.events_per_shard {
            m.record("sim.shard.events", e);
        }
    }
}

fn build_ctx<'a>(topo: &'a Topology, cfg: &'a ScaleConfig) -> RunCtx<'a> {
    let peers = topo.peer_count() as u64;
    let parts = topo.partition_count() as u64;
    let qinfo = (0..cfg.queries as u32)
        .map(|qid| {
            let initiator = mix(cfg.seed, qid, 0, 0x1111).wrapping_rem(peers) as u32;
            let part = mix(cfg.seed, qid, 0, 0x2222).wrapping_rem(parts) as usize;
            let path = &topo.paths[part];
            let trim = (mix(cfg.seed, qid, 0, 0x3333).wrapping_rem(cfg.shower_trim_bits as u64 + 1))
                as usize;
            let key = path.prefix(path.len().saturating_sub(trim).max(1));
            QInfo { initiator, key }
        })
        .collect();
    RunCtx { topo, cfg, qinfo }
}

fn initial_events(ctx: &RunCtx<'_>) -> Vec<Ev> {
    let cfg = ctx.cfg;
    (0..cfg.queries as u32)
        .map(|qid| Ev {
            at_us: mix(cfg.seed, qid, 0, 0x57A7).wrapping_rem(cfg.arrival_spread_us.max(1)),
            qid,
            step: 0,
            peer: ctx.qinfo[qid as usize].initiator,
            kind: EvKind::Query,
        })
        .collect()
}

fn finish(ctx: &RunCtx<'_>, qstate: &[QState], events: u64) -> ScaleOutcome {
    let mut queries_done = 0u64;
    let mut max_done = 0u64;
    let mut sum_done = 0u64;
    let mut checksum = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
    for (qid, qs) in qstate.iter().enumerate().take(ctx.cfg.queries) {
        if qs.done_us > 0 {
            queries_done += 1;
            max_done = max_done.max(qs.done_us);
            sum_done = sum_done.wrapping_add(qs.done_us);
            for w in [qid as u64, qs.done_us] {
                checksum ^= w;
                checksum = checksum.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
    }
    ScaleOutcome { queries_done, events, max_done_us: max_done, sum_done_us: sum_done, checksum }
}

// ----------------------------------------------------------------------
// Serial baseline: one global binary heap
// ----------------------------------------------------------------------

/// Heap entry ordered by the global event key, reversed for a min-heap.
struct HeapEv(Ev);

impl PartialEq for HeapEv {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl Eq for HeapEv {}
impl PartialOrd for HeapEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.key().cmp(&self.0.key())
    }
}

/// Whole-network state for the serial engine.
struct GlobalState {
    busy: Vec<u64>,
    qstate: Vec<QState>,
}

impl SimState for GlobalState {
    #[inline]
    fn busy_mut(&mut self, peer: u32) -> &mut u64 {
        &mut self.busy[peer as usize]
    }
    #[inline]
    fn qstate_mut(&mut self, qid: u32) -> &mut QState {
        &mut self.qstate[qid as usize]
    }
}

/// The serial baseline: every event on **one global binary heap** ordered
/// by the event key — the direct analogue of the classic single event
/// loop. Same [`ScaleOutcome`] as the sharded core by construction;
/// measured for the wall-clock comparison.
pub fn run_serial(topo: &Topology, cfg: &ScaleConfig) -> (ScaleOutcome, ScaleRun) {
    let ctx = build_ctx(topo, cfg);
    let mut st = GlobalState {
        busy: vec![0u64; topo.peer_count()],
        qstate: vec![QState::default(); cfg.queries],
    };
    let mut events = 0u64;

    let t0 = Instant::now();
    let mut heap: std::collections::BinaryHeap<HeapEv> =
        initial_events(&ctx).into_iter().map(HeapEv).collect();
    let mut emitted: Vec<Ev> = Vec::new();
    while let Some(HeapEv(ev)) = heap.pop() {
        events += 1;
        ctx.handle(ev, &mut st, &mut |e| emitted.push(e));
        heap.extend(emitted.drain(..).map(HeapEv));
    }
    let elapsed = t0.elapsed();
    let outcome = finish(&ctx, &st.qstate, events);
    let run = ScaleRun {
        mode: "serial".into(),
        shards: 1,
        threads: false,
        events,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        events_per_sec: events as f64 / elapsed.as_secs_f64().max(1e-9),
        events_per_shard: vec![events],
        windows_swept: 0,
        empty_windows: 0,
        mailbox_events: 0,
        mailbox_peak: 0,
    };
    (outcome, run)
}

// ----------------------------------------------------------------------
// Checkpoint / resume
// ----------------------------------------------------------------------

/// A pending scale event in serializable form. `kind`: 0 = `Query`,
/// 1 = `Forward`, 2 = `Result` (with its `of` payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleEv {
    pub at_us: u64,
    pub qid: u32,
    pub step: u32,
    pub peer: u32,
    pub kind: u8,
    pub of: u32,
}

impl From<Ev> for ScaleEv {
    fn from(e: Ev) -> Self {
        let (kind, of) = match e.kind {
            EvKind::Query => (0, 0),
            EvKind::Forward => (1, 0),
            EvKind::Result { of } => (2, of),
        };
        Self { at_us: e.at_us, qid: e.qid, step: e.step, peer: e.peer, kind, of }
    }
}

impl ScaleEv {
    fn to_ev(self) -> Ev {
        let kind = match self.kind {
            0 => EvKind::Query,
            1 => EvKind::Forward,
            2 => EvKind::Result { of: self.of },
            other => panic!("corrupt scale checkpoint: event kind {other}"),
        };
        Ev { at_us: self.at_us, qid: self.qid, step: self.step, peer: self.peer, kind }
    }
}

/// The owned image of a paused scale run. The scale core has no in-flight
/// task machinery — every event is a plain message — so any event boundary
/// is a legal checkpoint: the image is just the pending event set, every
/// peer's `busy_until`, per-query progress, and the processed-event count.
/// Static inputs ([`Topology`], [`ScaleConfig`]) are supplied again at
/// resume; randomness is stateless ([`crate::seed::mix`]), so there is no
/// RNG stream to carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleCheckpoint {
    /// The stop bound the pause was requested at (informational).
    pub stop_us: u64,
    /// Pending events, sorted by the global event key.
    pub pending: Vec<ScaleEv>,
    /// `busy_until` per peer.
    pub busy: Vec<u64>,
    /// `(expected, got, done_us)` per query, dense by qid.
    pub qstate: Vec<(u32, u32, u64)>,
    /// Events processed before the pause.
    pub events: u64,
}

/// Outcome of [`run_serial_until`].
pub enum ScalePhase {
    Done(ScaleOutcome, ScaleRun),
    Paused(ScaleCheckpoint),
}

/// [`run_serial`], paused at the first event boundary at or after
/// `stop_us`: events strictly before the bound are processed, everything
/// still pending is walked into a [`ScaleCheckpoint`]. A workload that
/// drains before the bound completes normally.
///
/// Resuming — serially ([`resume_serial`]) or on the windowed core
/// ([`resume_sharded`], any shard count, threaded or not) — produces the
/// uninterrupted run's [`ScaleOutcome`] bit for bit.
pub fn run_serial_until(topo: &Topology, cfg: &ScaleConfig, stop_us: u64) -> ScalePhase {
    let ctx = build_ctx(topo, cfg);
    let mut st = GlobalState {
        busy: vec![0u64; topo.peer_count()],
        qstate: vec![QState::default(); cfg.queries],
    };
    let mut events = 0u64;

    let t0 = Instant::now();
    let mut heap: std::collections::BinaryHeap<HeapEv> =
        initial_events(&ctx).into_iter().map(HeapEv).collect();
    let mut emitted: Vec<Ev> = Vec::new();
    loop {
        // Pause check BEFORE popping: the boundary event itself belongs to
        // the resumed half.
        if heap.peek().is_some_and(|h| h.0.at_us >= stop_us) {
            let mut pending: Vec<Ev> = heap.into_iter().map(|HeapEv(e)| e).collect();
            pending.sort_unstable_by_key(Ev::key128);
            return ScalePhase::Paused(ScaleCheckpoint {
                stop_us,
                pending: pending.into_iter().map(ScaleEv::from).collect(),
                busy: st.busy,
                qstate: st.qstate.iter().map(|q| (q.expected, q.got, q.done_us)).collect(),
                events,
            });
        }
        let Some(HeapEv(ev)) = heap.pop() else { break };
        events += 1;
        ctx.handle(ev, &mut st, &mut |e| emitted.push(e));
        heap.extend(emitted.drain(..).map(HeapEv));
    }
    let elapsed = t0.elapsed();
    let outcome = finish(&ctx, &st.qstate, events);
    let run = ScaleRun {
        mode: "serial".into(),
        shards: 1,
        threads: false,
        events,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        events_per_sec: events as f64 / elapsed.as_secs_f64().max(1e-9),
        events_per_shard: vec![events],
        windows_swept: 0,
        empty_windows: 0,
        mailbox_events: 0,
        mailbox_peak: 0,
    };
    ScalePhase::Done(outcome, run)
}

/// Resume a paused run on the serial engine. `topo` and `cfg` must equal
/// the original run's (the stateless draws replay from them).
pub fn resume_serial(
    topo: &Topology,
    cfg: &ScaleConfig,
    ckpt: &ScaleCheckpoint,
) -> (ScaleOutcome, ScaleRun) {
    assert_eq!(ckpt.busy.len(), topo.peer_count(), "checkpoint from a different topology");
    assert_eq!(ckpt.qstate.len(), cfg.queries, "checkpoint from a different workload");
    let ctx = build_ctx(topo, cfg);
    let mut st = GlobalState {
        busy: ckpt.busy.clone(),
        qstate: ckpt
            .qstate
            .iter()
            .map(|&(expected, got, done_us)| QState { expected, got, done_us })
            .collect(),
    };
    let mut events = ckpt.events;

    let t0 = Instant::now();
    let mut heap: std::collections::BinaryHeap<HeapEv> =
        ckpt.pending.iter().map(|&e| HeapEv(e.to_ev())).collect();
    let mut emitted: Vec<Ev> = Vec::new();
    while let Some(HeapEv(ev)) = heap.pop() {
        events += 1;
        ctx.handle(ev, &mut st, &mut |e| emitted.push(e));
        heap.extend(emitted.drain(..).map(HeapEv));
    }
    let elapsed = t0.elapsed();
    let outcome = finish(&ctx, &st.qstate, events);
    let run = ScaleRun {
        mode: "serial".into(),
        shards: 1,
        threads: false,
        events,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        events_per_sec: events as f64 / elapsed.as_secs_f64().max(1e-9),
        events_per_shard: vec![events],
        windows_swept: 0,
        empty_windows: 0,
        mailbox_events: 0,
        mailbox_peak: 0,
    };
    (outcome, run)
}

// ----------------------------------------------------------------------
// The sharded windowed core
// ----------------------------------------------------------------------

/// One shard's mutable state: the `busy_until` slots of the peers
/// `p ≡ id (mod shards)`, the progress of queries initiated by them, and
/// its processed-event count. Pending events live in the shard's [`Ring`].
struct Shard {
    id: usize,
    shards: usize,
    /// `busy_until` of peer `p`, at local index `p / shards`.
    busy: Vec<u64>,
    /// Dense by qid; only queries whose initiator lives here are touched.
    qstate: Vec<QState>,
    events: u64,
    /// Telemetry (never read by the handler — pure observation).
    windows_swept: u64,
    empty_windows: u64,
    mailbox_events: u64,
    mailbox_peak: u64,
}

/// One shard's **calendar ring** of pending events: slot `w & mask`
/// holds window `w`'s bucket. Insertion is a shift, a mask and a push —
/// no ordered-map node, no per-event allocation (slot vectors keep their
/// capacity across laps) — which is where the windowed core's wall-clock
/// edge over per-event heap churn comes from. The ring is sized at
/// start-up so every event a handler can emit (bounded by the arrival
/// spread and by `service + max_scan + link_min + jitter`) lands within
/// `mask + 1` windows of the cursor; `insert` asserts it.
///
/// Kept apart from [`Shard`] so the single-threaded loop can borrow one
/// shard's state mutably while inserting emissions into **any** shard's
/// ring — the lookahead invariant makes that safe (every emission lands
/// in a later window).
struct Ring {
    /// Window width as a shift: `window_us = 1 << shift`, so the hot
    /// per-insert window computation is `at_us >> shift`, not a division.
    shift: u32,
    /// Slot `w & mask` holds the events of window `w`.
    slots: Vec<Vec<Ev>>,
    mask: usize,
    /// Lowest window a pending event may still occupy (cursor + 1 after
    /// each taken window) — the ring-horizon assertion's floor.
    floor: u64,
    /// Events inserted but not yet taken.
    pending: usize,
}

impl Ring {
    #[inline]
    fn insert(&mut self, ev: Ev) {
        let w = ev.at_us >> self.shift;
        debug_assert!(w >= self.floor, "event for an already-processed window");
        if (w - self.floor) as usize > self.mask {
            self.grow(w);
        }
        self.slots[w as usize & self.mask].push(ev);
        self.pending += 1;
    }

    /// Widen the ring until window `w` fits above the floor. The initial
    /// sizing covers the arrival spread plus the largest single hop, but a
    /// resumed backlog (or a deep busy cascade onto one peer) can schedule
    /// past it. Each occupied slot holds exactly one window's events —
    /// the horizon invariant held before the grow — so re-bucketing whole
    /// slots by their timestamps preserves per-window insertion order and
    /// the simulation stays bit-identical.
    #[cold]
    fn grow(&mut self, w: u64) {
        let need = ((w - self.floor) as usize + 1).next_power_of_two();
        let new_len = need.max((self.mask + 1) * 2);
        let mut slots: Vec<Vec<Ev>> = vec![Vec::new(); new_len];
        for old in self.slots.drain(..) {
            if let Some(first) = old.first() {
                let idx = (first.at_us >> self.shift) as usize & (new_len - 1);
                slots[idx] = old;
            }
        }
        self.slots = slots;
        self.mask = new_len - 1;
    }

    /// Remove and return window `w`'s bucket (possibly empty), advancing
    /// the floor past it.
    #[inline]
    fn take(&mut self, w: u64) -> Vec<Ev> {
        self.floor = w + 1;
        let evs = std::mem::take(&mut self.slots[w as usize & self.mask]);
        self.pending -= evs.len();
        evs
    }

    /// Hand a drained bucket vector back to its slot so the next lap of
    /// the ring reuses its capacity instead of reallocating. The slot may
    /// have been refilled since `take`: an emission can land exactly one
    /// ring-length ahead, and a mid-window `grow` remaps `w` to a slot
    /// another live window now owns — in either case the capacity is
    /// simply dropped instead of clobbering pending events.
    #[inline]
    fn put_back(&mut self, w: u64, mut evs: Vec<Ev>) {
        let slot = &mut self.slots[w as usize & self.mask];
        if slot.is_empty() {
            evs.clear();
            *slot = evs;
        }
    }
}

/// The shard's mutable state viewed through [`SimState`] (stride-indexed
/// peer slots).
struct ShardState<'a> {
    busy: &'a mut [u64],
    qstate: &'a mut [QState],
    shards: usize,
}

impl SimState for ShardState<'_> {
    #[inline]
    fn busy_mut(&mut self, peer: u32) -> &mut u64 {
        &mut self.busy[peer as usize / self.shards]
    }
    #[inline]
    fn qstate_mut(&mut self, qid: u32) -> &mut QState {
        &mut self.qstate[qid as usize]
    }
}

impl Shard {
    /// Process one sorted window bucket. Safe to run concurrently with
    /// other shards' buckets of the same window: the lookahead invariant
    /// guarantees no emission lands inside it.
    fn run_evs(&mut self, evs: &[Ev], ctx: &RunCtx<'_>, emit: &mut impl FnMut(Ev)) {
        self.events += evs.len() as u64;
        let mut st =
            ShardState { busy: &mut self.busy, qstate: &mut self.qstate, shards: self.shards };
        for &ev in evs {
            debug_assert_eq!(ev.peer as usize % self.shards, self.id, "event on wrong shard");
            ctx.handle(ev, &mut st, emit);
        }
    }
}

/// The sharded windowed core. `cfg.threads` selects barrier-synchronized
/// OS threads (one per shard) over the single-threaded shard loop; the
/// [`ScaleOutcome`] is identical either way.
pub fn run_sharded(topo: &Topology, cfg: &ScaleConfig) -> (ScaleOutcome, ScaleRun) {
    sharded_core(topo, cfg, None)
}

/// Resume a paused run ([`run_serial_until`]) on the windowed core — any
/// shard count, threaded or not; the [`ScaleOutcome`] matches the
/// uninterrupted serial run bit for bit. The checkpoint's global state is
/// strided back onto the shards (`busy_until` of peer `p` to shard
/// `p % shards`); per-query progress is replicated to every shard and
/// collected, as always, from the initiator's.
pub fn resume_sharded(
    topo: &Topology,
    cfg: &ScaleConfig,
    ckpt: &ScaleCheckpoint,
) -> (ScaleOutcome, ScaleRun) {
    assert_eq!(ckpt.busy.len(), topo.peer_count(), "checkpoint from a different topology");
    assert_eq!(ckpt.qstate.len(), cfg.queries, "checkpoint from a different workload");
    sharded_core(topo, cfg, Some(ckpt))
}

fn sharded_core(
    topo: &Topology,
    cfg: &ScaleConfig,
    resume: Option<&ScaleCheckpoint>,
) -> (ScaleOutcome, ScaleRun) {
    let shards_n = cfg.shards.max(1);
    // The safety window can be as wide as the true lookahead bound: an
    // event at `t` emits at `done + latency` with `done ≥ t + service_us`,
    // so any width ≤ `service_us + link_min_us` is conservative. Take the
    // largest power of two under the bound — window arithmetic in the
    // insert hot path becomes a shift, and wider windows mean fewer
    // sweeps and barriers for the same guarantee.
    let bound_us = cfg.service_us + cfg.link_min_us.max(1);
    let shift = bound_us.ilog2();
    let window_us = 1u64 << shift;
    let ctx = build_ctx(topo, cfg);
    // Ring horizon: no pending event is ever further ahead of the cursor
    // than the initial arrival spread or one maximal handler emission
    // (service + longest local scan + max link latency).
    let max_scan_us =
        topo.items_per_part.iter().copied().max().unwrap_or(0) as u64 * cfg.scan_us_per_item;
    let max_delta_us = cfg.service_us + max_scan_us + cfg.link_min_us.max(1) + cfg.link_jitter_us;
    // Resuming: replay the pending event set instead of fresh arrivals,
    // stride the checkpointed `busy_until` back onto the shards, replicate
    // per-query progress (each query is only ever touched — and collected —
    // on its initiator's shard, so replication is safe), and start the
    // window sweep at the earliest pending window (the rings' floor must
    // match, or the horizon assertion would reject far-future arrivals).
    let pending: Vec<Ev> = match resume {
        None => initial_events(&ctx),
        Some(ck) => ck.pending.iter().map(|&e| e.to_ev()).collect(),
    };
    let w0 = match resume {
        None => 0,
        Some(_) => pending.iter().map(|e| e.at_us >> shift).min().unwrap_or(0),
    };
    // A fresh ring only has to absorb the arrival spread (and one maximal
    // handler emission). A resumed one starts with a pending set — and
    // per-peer service backlogs — that a mid-run cut can leave arbitrarily
    // far above the earliest pending window, so the horizon additionally
    // covers the checkpoint's own span above `w0`.
    let resume_span_w = match resume {
        None => 0,
        Some(ck) => {
            let max_pend_w = pending.iter().map(|e| e.at_us >> shift).max().unwrap_or(0);
            let max_busy_w = ck.busy.iter().copied().max().unwrap_or(0) >> shift;
            max_pend_w.max(max_busy_w).saturating_sub(w0)
        }
    };
    let horizon =
        (cfg.arrival_spread_us / window_us).max(max_delta_us / window_us) + 2 + resume_span_w;
    let ring_len = (horizon as usize).next_power_of_two();
    let base_qstate: Vec<QState> = match resume {
        None => vec![QState::default(); cfg.queries],
        Some(ck) => ck
            .qstate
            .iter()
            .map(|&(expected, got, done_us)| QState { expected, got, done_us })
            .collect(),
    };
    let mut shards: Vec<Shard> = (0..shards_n)
        .map(|id| Shard {
            id,
            shards: shards_n,
            busy: vec![0u64; topo.peer_count().div_ceil(shards_n)],
            qstate: base_qstate.clone(),
            events: 0,
            windows_swept: 0,
            empty_windows: 0,
            mailbox_events: 0,
            mailbox_peak: 0,
        })
        .collect();
    if let Some(ck) = resume {
        for (p, &b) in ck.busy.iter().enumerate() {
            shards[p % shards_n].busy[p / shards_n] = b;
        }
    }
    let mut rings: Vec<Ring> = (0..shards_n)
        .map(|_| Ring {
            shift,
            slots: vec![Vec::new(); ring_len],
            mask: ring_len - 1,
            floor: w0,
            pending: 0,
        })
        .collect();
    for ev in pending {
        rings[ev.peer as usize % shards_n].insert(ev);
    }

    let t0 = Instant::now();
    if cfg.threads && shards_n > 1 {
        run_windows_threaded(&ctx, &mut shards, &mut rings, w0);
    } else {
        run_windows_serial(&ctx, &mut shards, &mut rings, w0);
    }
    let elapsed = t0.elapsed();

    // Each query's progress lives on its initiator's shard; collect from
    // there.
    let mut events = resume.map_or(0, |ck| ck.events);
    for sh in &shards {
        events += sh.events;
    }
    let qstate: Vec<QState> = (0..cfg.queries)
        .map(|q| shards[ctx.qinfo[q].initiator as usize % shards_n].qstate[q])
        .collect();
    let outcome = finish(&ctx, &qstate, events);
    let run = ScaleRun {
        mode: "sharded".into(),
        shards: shards_n,
        threads: cfg.threads && shards_n > 1,
        events,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        events_per_sec: events as f64 / elapsed.as_secs_f64().max(1e-9),
        events_per_shard: shards.iter().map(|s| s.events).collect(),
        windows_swept: shards.iter().map(|s| s.windows_swept).sum(),
        empty_windows: shards.iter().map(|s| s.empty_windows).sum(),
        mailbox_events: shards.iter().map(|s| s.mailbox_events).sum(),
        mailbox_peak: shards.iter().map(|s| s.mailbox_peak).max().unwrap_or(0),
    };
    (outcome, run)
}

/// Single-threaded window loop: sweep the calendars window by window
/// (empty slots cost one `take` of an empty vector), stop when no ring
/// has pending events. Emissions insert **directly** into the destination
/// shard's ring — no outbox, no second pass — which is legal mid-window
/// because the lookahead invariant puts every emission in a later window
/// than any bucket still to be processed this sweep.
fn run_windows_serial(ctx: &RunCtx<'_>, shards: &mut [Shard], rings: &mut [Ring], w0: u64) {
    let n = shards.len();
    let shift = rings[0].shift;
    let mut w = w0;
    while rings.iter().any(|r| r.pending > 0) {
        for i in 0..n {
            let mut evs = rings[i].take(w);
            shards[i].windows_swept += 1;
            if evs.is_empty() {
                shards[i].empty_windows += 1;
                continue;
            }
            evs.sort_unstable_by_key(Ev::key128);
            let (sh, rings) = (&mut shards[i], &mut *rings);
            sh.run_evs(&evs, ctx, &mut |e| {
                debug_assert!(
                    e.at_us >> shift > w,
                    "lookahead violation: emission into the current window"
                );
                rings[e.peer as usize % n].insert(e);
            });
            rings[i].put_back(w, evs);
        }
        w += 1;
    }
}

/// Threaded window loop: one OS thread per shard, barrier-synchronized.
/// Mailbox `m[i][j]` carries shard `i`'s emissions for shard `j`; writers
/// fill between the first and second barrier, owners drain between the
/// second and third — no mailbox is read while written.
fn run_windows_threaded(ctx: &RunCtx<'_>, shards: &mut [Shard], rings: &mut [Ring], w0: u64) {
    let n = shards.len();
    let barrier = Barrier::new(n);
    let pendings: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let mailboxes: Vec<Vec<Mutex<Vec<Ev>>>> =
        (0..n).map(|_| (0..n).map(|_| Mutex::new(Vec::new())).collect()).collect();

    std::thread::scope(|scope| {
        for (sh, ring) in shards.iter_mut().zip(rings.iter_mut()) {
            let (barrier, pendings, mailboxes) = (&barrier, &pendings, &mailboxes);
            scope.spawn(move || {
                let id = sh.id;
                let shift = ring.shift;
                let mut out: Vec<Vec<Ev>> = vec![Vec::new(); n];
                let mut w = w0;
                loop {
                    pendings[id].store(ring.pending as u64, AtomicOrdering::Relaxed);
                    barrier.wait();
                    // Every thread computes the same sum, so all break on
                    // the same window.
                    let total: u64 = pendings.iter().map(|p| p.load(AtomicOrdering::Relaxed)).sum();
                    if total == 0 {
                        break;
                    }
                    let mut evs = ring.take(w);
                    sh.windows_swept += 1;
                    if evs.is_empty() {
                        sh.empty_windows += 1;
                    }
                    if !evs.is_empty() {
                        evs.sort_unstable_by_key(Ev::key128);
                        sh.run_evs(&evs, ctx, &mut |e| {
                            debug_assert!(
                                e.at_us >> shift > w,
                                "lookahead violation: emission into the current window"
                            );
                            let dest = e.peer as usize % n;
                            // Own-shard emissions skip the mailbox.
                            if dest == id {
                                ring.insert(e);
                            } else {
                                out[dest].push(e);
                            }
                        });
                        ring.put_back(w, evs);
                    }
                    for (dest, lane) in out.iter_mut().enumerate() {
                        if !lane.is_empty() {
                            mailboxes[id][dest].lock().expect("mailbox").append(lane);
                        }
                    }
                    barrier.wait();
                    for row in mailboxes {
                        let mut lane = row[id].lock().expect("mailbox");
                        let depth = lane.len() as u64;
                        if depth > 0 {
                            sh.mailbox_events += depth;
                            sh.mailbox_peak = sh.mailbox_peak.max(depth);
                        }
                        for ev in lane.drain(..) {
                            ring.insert(ev);
                        }
                    }
                    barrier.wait();
                    w += 1;
                }
            });
        }
    });
}

// ----------------------------------------------------------------------
// RSS helpers (Linux, dependency-free)
// ----------------------------------------------------------------------

/// Peak resident set size of this process (`VmHWM` from
/// `/proc/self/status`); `None` off Linux.
pub fn rss_peak_bytes() -> Option<u64> {
    proc_status_kib("VmHWM:").map(|k| k * 1024)
}

/// Current resident set size (`VmRSS`); `None` off Linux.
pub fn rss_now_bytes() -> Option<u64> {
    proc_status_kib("VmRSS:").map(|k| k * 1024)
}

fn proc_status_kib(label: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(label))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqo_overlay::hash::hash_str;
    use sqo_overlay::network::NetworkConfig;

    #[derive(Debug, Clone)]
    struct W(String);
    impl Item for W {
        fn size_bytes(&self) -> usize {
            self.0.len()
        }
    }

    fn small_net() -> Network<W> {
        let data: Vec<(Key, W)> =
            (0..400).map(|i| (hash_str(&format!("w{i:04}")), W(format!("w{i:04}")))).collect();
        Network::build(
            NetworkConfig { peers: 96, replication: 3, seed: 11, ..NetworkConfig::default() },
            data,
        )
    }

    #[test]
    fn serial_and_sharded_agree_bit_for_bit() {
        let net = small_net();
        let topo = Topology::of_network(&net);
        let cfg = ScaleConfig { queries: 64, arrival_spread_us: 5_000, ..Default::default() };
        let (serial, _) = run_serial(&topo, &cfg);
        assert_eq!(serial.queries_done, 64, "all queries complete: {serial:?}");
        for shards in [1usize, 2, 3, 4] {
            for threads in [false, true] {
                let c = ScaleConfig { shards, threads, ..cfg };
                let (out, run) = run_sharded(&topo, &c);
                assert_eq!(out, serial, "shards={shards} threads={threads} diverged");
                assert_eq!(run.shards, shards);
            }
        }
    }

    /// Pause a serial run mid-flight, then finish it with `resume_serial`
    /// and `resume_sharded` at every shard count: every path must land on
    /// the exact `ScaleOutcome` of the uninterrupted run.
    #[test]
    fn checkpoint_resume_matches_the_uninterrupted_run() {
        let net = small_net();
        let topo = Topology::of_network(&net);
        let cfg = ScaleConfig { queries: 64, arrival_spread_us: 5_000, ..Default::default() };
        let (full, _) = run_serial(&topo, &cfg);
        assert_eq!(full.queries_done, 64);

        let ckpt = match run_serial_until(&topo, &cfg, 2_500) {
            ScalePhase::Paused(ck) => ck,
            ScalePhase::Done(..) => panic!("2.5ms cut should land mid-run"),
        };
        assert!(!ckpt.pending.is_empty(), "mid-run checkpoint has pending events");
        assert!(ckpt.events > 0 && ckpt.events < full.events);

        let (resumed, _) = resume_serial(&topo, &cfg, &ckpt);
        assert_eq!(resumed, full, "serial resume diverged");

        for shards in [1usize, 2, 4] {
            for threads in [false, true] {
                let c = ScaleConfig { shards, threads, ..cfg };
                let (out, run) = resume_sharded(&topo, &c, &ckpt);
                assert_eq!(out, full, "shards={shards} threads={threads} resume diverged");
                assert_eq!(run.events_per_shard.iter().sum::<u64>(), run.events - ckpt.events);
            }
        }
    }

    /// A cut past the last event is just the whole run.
    #[test]
    fn pause_after_the_horizon_completes() {
        let net = small_net();
        let topo = Topology::of_network(&net);
        let cfg = ScaleConfig { queries: 16, arrival_spread_us: 1_000, ..Default::default() };
        let (full, _) = run_serial(&topo, &cfg);
        match run_serial_until(&topo, &cfg, u64::MAX) {
            ScalePhase::Done(out, _) => assert_eq!(out, full),
            ScalePhase::Paused(_) => panic!("nothing left to pause on"),
        }
    }

    #[test]
    fn showers_fan_out_and_still_complete() {
        let net = small_net();
        let topo = Topology::of_network(&net);
        let cfg = ScaleConfig {
            queries: 32,
            shower_trim_bits: 3,
            arrival_spread_us: 2_000,
            ..Default::default()
        };
        let (showered, _) = run_serial(&topo, &cfg);
        assert_eq!(showered.queries_done, 32);
        // Shallow prefixes shower: strictly more events than exact-path
        // lookups of the same workload.
        let exact = ScaleConfig { shower_trim_bits: 0, ..cfg };
        let (exact_out, _) = run_serial(&topo, &exact);
        assert!(showered.events > exact_out.events, "{} vs {}", showered.events, exact_out.events);
    }

    #[test]
    fn topology_subtree_matches_network() {
        let net = small_net();
        let topo = Topology::of_network(&net);
        for part in 0..topo.partition_count() {
            let key = topo.paths[part].clone();
            let (s, e) = topo.subtree_of(&key);
            assert_eq!((s as usize, e as usize), net.subtree_of(&key));
            if key.len() > 1 {
                let shallow = key.prefix(key.len() - 1);
                let (s, e) = topo.subtree_of(&shallow);
                assert_eq!((s as usize, e as usize), net.subtree_of(&shallow));
            }
        }
    }

    #[test]
    fn per_shard_telemetry_accounts_for_every_event() {
        let net = small_net();
        let topo = Topology::of_network(&net);
        let cfg = ScaleConfig {
            queries: 64,
            shards: 4,
            threads: true,
            arrival_spread_us: 5_000,
            ..Default::default()
        };
        let (out, run) = run_sharded(&topo, &cfg);
        assert_eq!(run.events_per_shard.len(), 4);
        assert_eq!(run.events_per_shard.iter().sum::<u64>(), run.events);
        assert!(run.windows_swept > 0, "windows were swept");
        assert!(run.windows_swept >= run.empty_windows);
        assert!(run.mailbox_events > 0, "threaded run crossed shards through mailboxes");
        assert!(run.mailbox_peak > 0 && run.mailbox_peak <= run.mailbox_events);

        // The telemetry is observation only: the deterministic outcome
        // still matches the serial baseline.
        let (serial, serial_run) = run_serial(&topo, &cfg);
        assert_eq!(out, serial);
        assert_eq!(serial_run.events_per_shard, vec![serial_run.events]);
        assert_eq!(serial_run.mailbox_events, 0);

        let mut m = MetricsRegistry::default();
        run.export_metrics(&mut m);
        assert_eq!(m.gauge("sim.shard.count"), Some(4.0));
        assert!(m.gauge("sim.shard.imbalance").unwrap() >= 1.0);
        assert_eq!(m.counter("sim.shard.windows_swept"), run.windows_swept);
        assert_eq!(m.counter("sim.shard.mailbox_events"), run.mailbox_events);
        let h = m.histogram("sim.shard.events").expect("events-per-shard histogram");
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn rss_helpers_report_on_linux() {
        if let (Some(now), Some(peak)) = (rss_now_bytes(), rss_peak_bytes()) {
            assert!(now > 0 && peak >= now / 2, "peak {peak} vs now {now}");
        }
    }
}
