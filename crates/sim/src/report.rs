//! Latency summaries: percentiles, per-operator breakdowns, JSON-ready.

use serde::Serialize;
use sqo_obs::LogHistogram;

/// Nearest-rank percentile of a **sorted** slice of microsecond latencies.
/// `p` in `(0, 100]`; an empty slice yields 0.
pub fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Distribution summary of a set of query latencies.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize)]
pub struct LatencySummary {
    pub count: usize,
    pub mean_us: u64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
}

impl LatencySummary {
    /// Summarize (sorts a copy; input order is irrelevant).
    pub fn of(latencies_us: &[u64]) -> Self {
        if latencies_us.is_empty() {
            return Self::default();
        }
        let mut xs = latencies_us.to_vec();
        xs.sort_unstable();
        Self {
            count: xs.len(),
            mean_us: xs.iter().sum::<u64>() / xs.len() as u64,
            p50_us: percentile_us(&xs, 50.0),
            p95_us: percentile_us(&xs, 95.0),
            p99_us: percentile_us(&xs, 99.0),
            max_us: *xs.last().unwrap(),
        }
    }

    /// Summarize a streaming [`LogHistogram`] — what the driver uses, so
    /// memory stays bounded by occupied buckets rather than sample count.
    ///
    /// The histogram's nearest-rank quantiles match [`Self::of`] exactly
    /// for small samples (rank 1 / rank `count` are the tracked min/max —
    /// the small-sample bias fix) and are within one bucket width
    /// (relative `2^-11`) elsewhere.
    pub fn of_histogram(h: &LogHistogram) -> Self {
        if h.is_empty() {
            return Self::default();
        }
        Self {
            count: h.count() as usize,
            mean_us: h.mean(),
            p50_us: h.quantile(50.0),
            p95_us: h.quantile(95.0),
            p99_us: h.quantile(99.0),
            max_us: h.max(),
        }
    }
}

/// One operator's latency profile within a driven workload, with its
/// overlay traffic next to the percentiles — optimizations that trade
/// messages for latency (caching, batching) are visible per operator in
/// the bench artifact, not only in the workload totals.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct OperatorLatency {
    pub operator: String,
    pub summary: LatencySummary,
    /// Overlay messages attributed to this operator's queries.
    pub messages: u64,
    /// Virtual time this operator's messages spent queued behind busy
    /// receivers — attributed **per operator** (summed over its queries),
    /// so congestion effects (and the adaptive join window's response to
    /// them) are visible where they happen, not only in workload totals.
    pub queue_us: u64,
    /// Probe keys this operator's queries served from the posting cache.
    pub cache_hits: u64,
    /// Probe keys that rode a coalesced multi-key exchange.
    pub probes_coalesced: u64,
    /// Largest adaptive join window this operator's queries reached (0
    /// for fixed windows and non-join operators).
    pub window_peak: usize,
    /// Adaptive-window congestion back-offs this operator's queries
    /// performed.
    pub window_shrinks: u64,
    /// Answered / addressed partition legs over this operator's queries —
    /// 1.0 on a healthy network, below it when dead partitions dropped
    /// branches or deadlines forfeited them.
    pub completeness: f64,
    /// Replica-fallback retries this operator's queries performed.
    pub retries: u64,
    /// Queries of this operator that returned a knowingly partial result.
    pub gave_up: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&xs, 50.0), 50);
        assert_eq!(percentile_us(&xs, 95.0), 95);
        assert_eq!(percentile_us(&xs, 99.0), 99);
        assert_eq!(percentile_us(&xs, 100.0), 100);
        assert_eq!(percentile_us(&[7], 99.0), 7);
        assert_eq!(percentile_us(&[], 99.0), 0);
    }

    #[test]
    fn histogram_summary_matches_exact_sort_for_small_samples() {
        // The small-sample bias pin: for n = 1..=5 the histogram-backed
        // summary equals the sorted-vec nearest-rank summary field for
        // field.
        let samples: &[&[u64]] =
            &[&[7], &[1200, 90], &[3, 3, 3], &[10, 2000, 5, 40], &[1, 2, 3, 1000, 100]];
        for xs in samples {
            let mut h = LogHistogram::new();
            for &v in *xs {
                h.record(v);
            }
            assert_eq!(LatencySummary::of_histogram(&h), LatencySummary::of(xs), "{xs:?}");
        }
    }

    #[test]
    fn histogram_summary_quantile_error_is_bounded() {
        let xs: Vec<u64> = (0..2000).map(|i| 50_000 + i * 331).collect();
        let mut h = LogHistogram::new();
        for &v in &xs {
            h.record(v);
        }
        let exact = LatencySummary::of(&xs);
        let approx = LatencySummary::of_histogram(&h);
        let bound = LogHistogram::relative_error_bound();
        for (a, e) in [
            (approx.p50_us, exact.p50_us),
            (approx.p95_us, exact.p95_us),
            (approx.p99_us, exact.p99_us),
        ] {
            assert!((a.abs_diff(e) as f64) <= (e as f64) * bound + 1.0, "approx={a} exact={e}");
        }
        assert_eq!(approx.max_us, exact.max_us, "max is exact");
        assert_eq!(approx.mean_us, exact.mean_us, "mean sums exactly");
    }

    #[test]
    fn summary_orders_invariants() {
        let s = LatencySummary::of(&[5, 1, 9, 3, 7, 100, 2, 4, 6, 8]);
        assert_eq!(s.count, 10);
        assert!(s.p50_us <= s.p95_us && s.p95_us <= s.p99_us && s.p99_us <= s.max_us);
        assert_eq!(s.max_us, 100);
    }
}
