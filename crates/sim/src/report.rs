//! Latency summaries: percentiles, per-operator breakdowns, JSON-ready.

use serde::Serialize;

/// Nearest-rank percentile of a **sorted** slice of microsecond latencies.
/// `p` in `(0, 100]`; an empty slice yields 0.
pub fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Distribution summary of a set of query latencies.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize)]
pub struct LatencySummary {
    pub count: usize,
    pub mean_us: u64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
}

impl LatencySummary {
    /// Summarize (sorts a copy; input order is irrelevant).
    pub fn of(latencies_us: &[u64]) -> Self {
        if latencies_us.is_empty() {
            return Self::default();
        }
        let mut xs = latencies_us.to_vec();
        xs.sort_unstable();
        Self {
            count: xs.len(),
            mean_us: xs.iter().sum::<u64>() / xs.len() as u64,
            p50_us: percentile_us(&xs, 50.0),
            p95_us: percentile_us(&xs, 95.0),
            p99_us: percentile_us(&xs, 99.0),
            max_us: *xs.last().unwrap(),
        }
    }
}

/// One operator's latency profile within a driven workload, with its
/// overlay traffic next to the percentiles — optimizations that trade
/// messages for latency (caching, batching) are visible per operator in
/// the bench artifact, not only in the workload totals.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct OperatorLatency {
    pub operator: String,
    pub summary: LatencySummary,
    /// Overlay messages attributed to this operator's queries.
    pub messages: u64,
    /// Virtual time this operator's messages spent queued behind busy
    /// receivers — attributed **per operator** (summed over its queries),
    /// so congestion effects (and the adaptive join window's response to
    /// them) are visible where they happen, not only in workload totals.
    pub queue_us: u64,
    /// Probe keys this operator's queries served from the posting cache.
    pub cache_hits: u64,
    /// Probe keys that rode a coalesced multi-key exchange.
    pub probes_coalesced: u64,
    /// Largest adaptive join window this operator's queries reached (0
    /// for fixed windows and non-join operators).
    pub window_peak: usize,
    /// Adaptive-window congestion back-offs this operator's queries
    /// performed.
    pub window_shrinks: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&xs, 50.0), 50);
        assert_eq!(percentile_us(&xs, 95.0), 95);
        assert_eq!(percentile_us(&xs, 99.0), 99);
        assert_eq!(percentile_us(&xs, 100.0), 100);
        assert_eq!(percentile_us(&[7], 99.0), 7);
        assert_eq!(percentile_us(&[], 99.0), 0);
    }

    #[test]
    fn summary_orders_invariants() {
        let s = LatencySummary::of(&[5, 1, 9, 3, 7, 100, 2, 4, 6, 8]);
        assert_eq!(s.count, 10);
        assert!(s.p50_us <= s.p95_us && s.p95_us <= s.p99_us && s.p99_us <= s.max_us);
        assert_eq!(s.max_us, 100);
    }
}
