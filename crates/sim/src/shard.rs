//! A sharded event queue with a **global** tie-breaking sequence.
//!
//! [`ShardedQueue`] partitions pending events across `S` lanes (the driver
//! maps each client to a lane) while popping in exactly the order a single
//! [`EventQueue`](crate::EventQueue) would: the earliest `(at_us, seq)`
//! pair across all lanes, where `seq` is one monotone counter shared by
//! every lane. Because the sequence is global, the pop order is a pure
//! function of the push sequence — *independent of the lane mapping and of
//! the lane count*. That invariant is what lets the workload driver expose
//! a `shards` knob whose every setting produces a byte-identical
//! [`DriverReport`](crate::DriverReport) (pinned by a property test), and
//! it bounds each lane's heap to its own events, which keeps push/pop cost
//! `O(log(n/S) + S)` instead of `O(log n)` on one hot heap.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at_us: u64,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at_us == other.at_us && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    /// Reversed on purpose: `BinaryHeap` is a max-heap and we want the
    /// earliest event on top.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at_us, other.seq).cmp(&(self.at_us, self.seq))
    }
}

/// A min-queue of timed events spread over `S` lanes, popping globally in
/// `(at_us, seq)` order — see the module docs for the determinism
/// invariant.
pub struct ShardedQueue<E> {
    lanes: Vec<BinaryHeap<Entry<E>>>,
    seq: u64,
    now_us: u64,
}

impl<E> ShardedQueue<E> {
    /// `lanes` is clamped to at least 1.
    pub fn new(lanes: usize) -> Self {
        Self { lanes: (0..lanes.max(1)).map(|_| BinaryHeap::new()).collect(), seq: 0, now_us: 0 }
    }

    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Current virtual time: the timestamp of the last popped event.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    pub fn len(&self) -> usize {
        self.lanes.iter().map(BinaryHeap::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(BinaryHeap::is_empty)
    }

    /// Schedule `ev` at `at_us` on `lane` (wrapped modulo the lane count).
    /// Scheduling into the past is clamped to `now` — the clock never runs
    /// backwards.
    pub fn push(&mut self, at_us: u64, lane: usize, ev: E) {
        let at_us = at_us.max(self.now_us);
        let seq = self.seq;
        self.seq += 1;
        let n = self.lanes.len();
        self.lanes[lane % n].push(Entry { at_us, seq, ev });
    }

    /// Pop the globally earliest event (minimum `(at_us, seq)` across all
    /// lanes), advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        let lane = self
            .lanes
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.peek().map(|e| ((e.at_us, e.seq), i)))
            .min()
            .map(|(_, i)| i)?;
        let e = self.lanes[lane].pop().expect("peeked above");
        debug_assert!(e.at_us >= self.now_us, "event queue must be monotone");
        self.now_us = e.at_us;
        Some((e.at_us, e.ev))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventQueue;

    /// Any lane mapping pops in exactly the single-queue order: the global
    /// sequence counter makes pop order a function of push order alone.
    #[test]
    fn matches_single_queue_for_any_lane_mapping() {
        // A scripted push sequence with heavy ties.
        let pushes: Vec<(u64, u32)> =
            (0..200u32).map(|i| (((i * 37) % 13) as u64 * 10, i)).collect();
        let mut reference = EventQueue::new();
        for &(t, v) in &pushes {
            reference.push(t, v);
        }
        let expected: Vec<(u64, u32)> = std::iter::from_fn(|| reference.pop()).collect();

        for lanes in [1usize, 2, 3, 7] {
            let mut q = ShardedQueue::new(lanes);
            for &(t, v) in &pushes {
                // An arbitrary, lane-count-dependent mapping on purpose.
                q.push(t, (v as usize) * 31 % (lanes + 1), v);
            }
            let got: Vec<(u64, u32)> = std::iter::from_fn(|| q.pop()).collect();
            assert_eq!(got, expected, "lane count {lanes} changed pop order");
        }
    }

    #[test]
    fn interleaved_push_pop_stays_monotone_and_fifo() {
        let mut q = ShardedQueue::new(4);
        q.push(10, 0, "a1");
        q.push(10, 3, "b");
        assert_eq!(q.pop(), Some((10, "a1")));
        // Re-enqueue at the current timestamp on another lane: must go
        // behind the waiting same-time event (global seq).
        q.push(10, 1, "a2");
        assert_eq!(q.pop(), Some((10, "b")));
        assert_eq!(q.pop(), Some((10, "a2")));
        // Past pushes clamp to now.
        q.push(5, 2, "c");
        assert_eq!(q.pop(), Some((10, "c")));
        assert_eq!(q.now_us(), 10);
        assert!(q.is_empty());
    }
}
