//! A sharded event queue with a **global** tie-breaking sequence.
//!
//! [`ShardedQueue`] partitions pending events across `S` lanes (the driver
//! maps each client to a lane) while popping in exactly the order a single
//! [`EventQueue`](crate::EventQueue) would: the earliest `(at_us, seq)`
//! pair across all lanes, where `seq` is one monotone counter shared by
//! every lane. Because the sequence is global, the pop order is a pure
//! function of the push sequence — *independent of the lane mapping and of
//! the lane count*. That invariant is what lets the workload driver expose
//! a `shards` knob whose every setting produces a byte-identical
//! [`DriverReport`](crate::DriverReport) (pinned by a property test), and
//! it bounds each lane's heap to its own events, which keeps push/pop cost
//! `O(log(n/S) + S)` instead of `O(log n)` on one hot heap.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at_us: u64,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at_us == other.at_us && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    /// Reversed on purpose: `BinaryHeap` is a max-heap and we want the
    /// earliest event on top.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at_us, other.seq).cmp(&(self.at_us, self.seq))
    }
}

/// A min-queue of timed events spread over `S` lanes, popping globally in
/// `(at_us, seq)` order — see the module docs for the determinism
/// invariant.
pub struct ShardedQueue<E> {
    lanes: Vec<BinaryHeap<Entry<E>>>,
    seq: u64,
    now_us: u64,
}

impl<E> ShardedQueue<E> {
    /// `lanes` is clamped to at least 1.
    pub fn new(lanes: usize) -> Self {
        Self { lanes: (0..lanes.max(1)).map(|_| BinaryHeap::new()).collect(), seq: 0, now_us: 0 }
    }

    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Current virtual time: the timestamp of the last popped event.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    pub fn len(&self) -> usize {
        self.lanes.iter().map(BinaryHeap::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(BinaryHeap::is_empty)
    }

    /// Schedule `ev` at `at_us` on `lane` (wrapped modulo the lane count).
    /// Scheduling into the past is clamped to `now` — the clock never runs
    /// backwards.
    pub fn push(&mut self, at_us: u64, lane: usize, ev: E) {
        let at_us = at_us.max(self.now_us);
        let seq = self.seq;
        self.seq += 1;
        let n = self.lanes.len();
        self.lanes[lane % n].push(Entry { at_us, seq, ev });
    }

    /// Pop the globally earliest event (minimum `(at_us, seq)` across all
    /// lanes), advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        let lane = self
            .lanes
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.peek().map(|e| ((e.at_us, e.seq), i)))
            .min()
            .map(|(_, i)| i)?;
        let e = self.lanes[lane].pop().expect("peeked above");
        debug_assert!(e.at_us >= self.now_us, "event queue must be monotone");
        self.now_us = e.at_us;
        Some((e.at_us, e.ev))
    }

    /// Timestamp of the event [`pop`](Self::pop) would return next, without
    /// popping it. Checkpointing peeks here to find a quiesce boundary (the
    /// decision to pause must happen *before* an event is consumed).
    pub fn peek_next_us(&self) -> Option<u64> {
        self.lanes.iter().filter_map(|h| h.peek().map(|e| (e.at_us, e.seq))).min().map(|(at, _)| at)
    }

    /// Walk the queue into an owned [`QueueState`]: every pending entry
    /// with its original `(at_us, seq, lane)`, sorted in pop order so equal
    /// queues export equal state.
    pub fn export_state(&self) -> QueueState<E>
    where
        E: Clone,
    {
        let mut entries: Vec<(u64, u64, u32, E)> = self
            .lanes
            .iter()
            .enumerate()
            .flat_map(|(lane, h)| {
                h.iter().map(move |e| (e.at_us, e.seq, lane as u32, e.ev.clone()))
            })
            .collect();
        entries.sort_unstable_by_key(|&(at, seq, _, _)| (at, seq));
        QueueState { lanes: self.lanes.len() as u32, seq: self.seq, now_us: self.now_us, entries }
    }

    /// Rebuild a queue from an exported image. Entries keep their original
    /// global sequence numbers, so the restored queue pops in exactly the
    /// order the exported one would have — the lane-count invariance pin
    /// holds across the round trip.
    pub fn from_state(state: QueueState<E>) -> Self {
        let mut lanes: Vec<BinaryHeap<Entry<E>>> =
            (0..state.lanes.max(1)).map(|_| BinaryHeap::new()).collect();
        let n = lanes.len();
        for (at_us, seq, lane, ev) in state.entries {
            assert!(seq < state.seq, "pending entry seq must precede the counter");
            assert!(at_us >= state.now_us, "pending entry must not be in the past");
            lanes[lane as usize % n].push(Entry { at_us, seq, ev });
        }
        Self { lanes, seq: state.seq, now_us: state.now_us }
    }
}

/// The owned image of a [`ShardedQueue`] (checkpointing): pending entries
/// as `(at_us, seq, lane, ev)` in pop order, plus the global sequence
/// counter and the clock.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueState<E> {
    pub lanes: u32,
    pub seq: u64,
    pub now_us: u64,
    pub entries: Vec<(u64, u64, u32, E)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventQueue;

    /// Any lane mapping pops in exactly the single-queue order: the global
    /// sequence counter makes pop order a function of push order alone.
    #[test]
    fn matches_single_queue_for_any_lane_mapping() {
        // A scripted push sequence with heavy ties.
        let pushes: Vec<(u64, u32)> =
            (0..200u32).map(|i| (((i * 37) % 13) as u64 * 10, i)).collect();
        let mut reference = EventQueue::new();
        for &(t, v) in &pushes {
            reference.push(t, v);
        }
        let expected: Vec<(u64, u32)> = std::iter::from_fn(|| reference.pop()).collect();

        for lanes in [1usize, 2, 3, 7] {
            let mut q = ShardedQueue::new(lanes);
            for &(t, v) in &pushes {
                // An arbitrary, lane-count-dependent mapping on purpose.
                q.push(t, (v as usize) * 31 % (lanes + 1), v);
            }
            let got: Vec<(u64, u32)> = std::iter::from_fn(|| q.pop()).collect();
            assert_eq!(got, expected, "lane count {lanes} changed pop order");
        }
    }

    /// Snapshot/restore mid-stream must not perturb pop order, whatever the
    /// lane count — the property the driver's byte-identical-report pin
    /// rests on.
    #[test]
    fn state_round_trip_preserves_pop_order_for_any_lane_count() {
        let pushes: Vec<(u64, u32)> =
            (0..300u32).map(|i| (((i * 53) % 17) as u64 * 7, i)).collect();
        for lanes in [1usize, 2, 8] {
            // Reference: uninterrupted run.
            let mut whole = ShardedQueue::new(lanes);
            for &(t, v) in &pushes {
                whole.push(t, (v as usize) * 13 % (lanes + 2), v);
            }
            let expected: Vec<(u64, u32)> = std::iter::from_fn(|| whole.pop()).collect();

            // Interrupted run: pop 100, snapshot, restore, drain.
            let mut q = ShardedQueue::new(lanes);
            for &(t, v) in &pushes {
                q.push(t, (v as usize) * 13 % (lanes + 2), v);
            }
            let mut got: Vec<(u64, u32)> = (0..100).map(|_| q.pop().unwrap()).collect();
            let state = q.export_state();
            assert_eq!(state.lanes as usize, lanes);
            assert_eq!(state.entries.len(), pushes.len() - 100);
            let mut restored = ShardedQueue::from_state(state.clone());
            assert_eq!(restored.peek_next_us(), q.peek_next_us());
            // Restored queue accepts fresh pushes with continued seqs.
            got.extend(std::iter::from_fn(|| restored.pop()));
            assert_eq!(got, expected, "lane count {lanes} diverged across the round trip");
            // Export of the restored queue matches the original export.
            let again = ShardedQueue::from_state(state.clone());
            assert_eq!(again.export_state(), state);
        }
    }

    /// A restored queue keeps allocating sequence numbers after the old
    /// counter, so new events interleave exactly as they would have.
    #[test]
    fn restored_queue_continues_the_global_sequence() {
        let mut q = ShardedQueue::new(3);
        q.push(10, 0, 1u32);
        q.push(10, 1, 2);
        let mut r = ShardedQueue::from_state(q.export_state());
        r.push(10, 2, 3);
        let drained: Vec<u32> = std::iter::from_fn(|| r.pop()).map(|(_, v)| v).collect();
        assert_eq!(drained, vec![1, 2, 3], "new push must sort after restored same-time events");
    }

    #[test]
    fn interleaved_push_pop_stays_monotone_and_fifo() {
        let mut q = ShardedQueue::new(4);
        q.push(10, 0, "a1");
        q.push(10, 3, "b");
        assert_eq!(q.pop(), Some((10, "a1")));
        // Re-enqueue at the current timestamp on another lane: must go
        // behind the waiting same-time event (global seq).
        q.push(10, 1, "a2");
        assert_eq!(q.pop(), Some((10, "b")));
        assert_eq!(q.pop(), Some((10, "a2")));
        // Past pushes clamp to now.
        q.push(5, 2, "c");
        assert_eq!(q.pop(), Some((10, "c")));
        assert_eq!(q.now_us(), 10);
        assert!(q.is_empty());
    }
}
