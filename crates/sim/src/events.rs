//! The discrete-event core: a virtual clock plus a binary-heap event queue
//! with deterministic tie-breaking.
//!
//! Events are `(time, payload)` pairs; equal-time events pop in insertion
//! order (a monotone sequence number breaks ties), so a simulation run is a
//! pure function of its inputs — no dependence on heap internals or hash
//! ordering.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at_us: u64,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at_us == other.at_us && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    /// Reversed on purpose: `BinaryHeap` is a max-heap and we want the
    /// earliest event on top.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at_us, other.seq).cmp(&(self.at_us, self.seq))
    }
}

/// A min-heap of timed events driving a virtual clock.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now_us: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), seq: 0, now_us: 0 }
    }

    /// Current virtual time: the timestamp of the last popped event.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `ev` at `at_us`. Scheduling into the past is clamped to
    /// `now` — the clock never runs backwards.
    pub fn push(&mut self, at_us: u64, ev: E) {
        let at_us = at_us.max(self.now_us);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at_us, seq, ev });
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        let e = self.heap.pop()?;
        debug_assert!(e.at_us >= self.now_us, "event queue must be monotone");
        self.now_us = e.at_us;
        Some((e.at_us, e.ev))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a1");
        q.push(10, "a2");
        q.push(20, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a1", "a2", "b", "c"]);
    }

    /// A task re-enqueueing a step at the current timestamp must go
    /// *behind* already-queued same-time events: the sequence counter is
    /// global and monotone, so one query scheduling several same-time
    /// steps cannot starve or overtake its peers. (This is the FIFO
    /// guarantee the interleaving driver's fairness rests on.)
    #[test]
    fn reenqueued_same_time_steps_queue_behind_waiting_events() {
        let mut q = EventQueue::new();
        q.push(10, "a1");
        q.push(10, "b");
        assert_eq!(q.pop(), Some((10, "a1")));
        // "a" immediately re-enqueues at the same timestamp (a fan-out
        // branch at its fork point): it must pop after the waiting "b".
        q.push(10, "a2");
        q.push(10, "a3");
        assert_eq!(q.pop(), Some((10, "b")));
        assert_eq!(q.pop(), Some((10, "a2")));
        assert_eq!(q.pop(), Some((10, "a3")));
        // Clamped past-pushes obey the same order among themselves.
        q.push(5, "c1");
        q.push(5, "c2");
        assert_eq!(q.pop(), Some((10, "c1")));
        assert_eq!(q.pop(), Some((10, "c2")));
    }

    #[test]
    fn clock_is_monotone_and_past_pushes_clamp() {
        let mut q = EventQueue::new();
        q.push(100, 1);
        assert_eq!(q.pop(), Some((100, 1)));
        q.push(50, 2); // in the past -> clamped to now
        assert_eq!(q.pop(), Some((100, 2)));
        assert_eq!(q.now_us(), 100);
    }
}
