//! # sqo-sim — deterministic discrete-event network simulation
//!
//! The paper evaluates its operators by *counting* messages on a
//! shared-memory P-Grid simulator; `sqo-overlay` reproduces that. This
//! crate adds the dimension the counting model cannot express: **time**.
//! A virtual clock, a binary-heap event queue, pluggable latency models,
//! message loss with retry, and per-peer serial service queues turn hop
//! counts into simulated wall-clock latency — and single queries into
//! concurrent workloads whose tail latency reflects contention.
//!
//! * [`events`] — the virtual clock + event queue (deterministic
//!   tie-breaking).
//! * [`latency`] — [`LatencyModel`] (constant / uniform jitter / log-normal
//!   WAN / per-link asymmetric) and [`LossModel`] (timeout + retry).
//! * [`netsim`] — [`NetSim`], the [`sqo_overlay::clock::EventSink`]
//!   implementation: critical-path fork/join accounting and per-peer serial
//!   queues.
//! * [`shard`] — [`ShardedQueue`]: the driver's event queue split over
//!   per-client lanes with a global tie-breaking sequence, so any shard
//!   count pops — and reports — identically.
//! * [`driver`] — the concurrent-workload driver: N clients, Poisson /
//!   closed-loop / explicit arrivals, churn schedules, per-operator
//!   p50/p95/p99. Queries run as **interleaved steps on the event queue**
//!   (`sqo-core`'s resumable operator tasks), so contention between
//!   in-flight queries is symmetric at step granularity.
//! * [`scale`] — `ScaleSim`, the sharded parallel event core: retrieval
//!   decomposed into true per-message events against a read-only
//!   [`Topology`] snapshot, executed in conservative lookahead windows
//!   (width = minimum link latency) per peer shard — deterministic for
//!   every shard count, threaded or not, and sized for 10⁵–10⁶ peers.
//! * [`report`] — latency summaries.
//!
//! ## Quickstart
//!
//! ```
//! use sqo_core::EngineBuilder;
//! use sqo_datasets::{bible_words, string_rows};
//! use sqo_sim::{run_driver, Arrival, DriverConfig, LatencyModel, SimConfig};
//!
//! let words = bible_words(300, 9);
//! let rows = string_rows("word", &words, "w");
//! let mut engine = EngineBuilder::new().peers(64).q(2).seed(1).build_with_rows(&rows);
//!
//! let cfg = DriverConfig {
//!     clients: 4,
//!     queries_per_client: 3,
//!     arrival: Arrival::Poisson { mean_interarrival_us: 10_000 },
//!     sim: SimConfig {
//!         latency: LatencyModel::Uniform { min_us: 500, max_us: 2_000 },
//!         ..SimConfig::default()
//!     },
//!     ..DriverConfig::default()
//! };
//! let report = run_driver(&mut engine, "word", &words, &cfg);
//! assert_eq!(report.queries_run, 12);
//! assert!(report.overall.p99_us >= report.overall.p50_us);
//! ```
//!
//! Or instrument individual queries without the driver:
//!
//! ```
//! use sqo_core::{EngineBuilder, Strategy};
//! use sqo_datasets::{bible_words, string_rows};
//! use sqo_sim::{install, SimConfig};
//!
//! let words = bible_words(200, 3);
//! let rows = string_rows("word", &words, "w");
//! let mut engine = EngineBuilder::new().peers(32).seed(2).build_with_rows(&rows);
//! install(&mut engine, SimConfig::default());
//!
//! let from = engine.random_peer();
//! let res = engine.similar(&words[0], Some("word"), 1, from, Strategy::QGrams);
//! let sim = res.stats.sim.expect("sink installed");
//! assert!(sim.elapsed_us > 0, "a remote query takes virtual time");
//! ```

pub mod driver;
pub mod events;
pub mod fault;
pub mod latency;
pub mod netsim;
pub mod report;
pub mod scale;
pub mod seed;
pub mod shard;

pub use driver::{
    resume_driver, run_driver, run_driver_until, ApiMode, Arrival, CacheReport, ChurnEvent,
    DriverCheckpoint, DriverConfig, DriverPhase, DriverReport, PhaseReport, PhaseSummary,
    QueryKind, RepairTotals,
};
pub use events::EventQueue;
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use latency::{LatencyModel, LossModel};
pub use netsim::{install, install_restored, set_installed_loss, NetSim, NetSimState, SimConfig};
pub use report::{percentile_us, LatencySummary, OperatorLatency};
pub use scale::{
    resume_serial, resume_sharded, rss_now_bytes, rss_peak_bytes, run_serial, run_serial_until,
    run_sharded, ScaleCheckpoint, ScaleConfig, ScaleOutcome, ScalePhase, ScaleRun, Topology,
};
pub use shard::{QueueState, ShardedQueue};
pub use sqo_obs::{LogHistogram, MetricsRegistry, TraceCollector};
pub use sqo_overlay::SimLatency;
