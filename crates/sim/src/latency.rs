//! Pluggable link-latency models and message loss.
//!
//! Latency is sampled per message in virtual microseconds. All models are
//! deterministic given the simulator seed and the message sequence; the
//! per-link model is additionally *stable*: the same directed pair always
//! sees the same latency, which is what makes it a model of a real
//! heterogeneous WAN topology rather than of per-packet jitter.

use rand::rngs::StdRng;
use rand::Rng;
use sqo_overlay::PeerId;

/// How long a message takes on the wire, `from → to`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Every link, every message: `us` microseconds (a LAN, or the paper's
    /// implicit unit-cost hop model made explicit).
    Constant { us: u64 },
    /// Per-message uniform jitter in `[min_us, max_us]`.
    Uniform { min_us: u64, max_us: u64 },
    /// Log-normally distributed per-message latency — the classic WAN
    /// round-trip shape (long right tail). `median_us` is the distribution
    /// median, `sigma` the log-space standard deviation (0.5 ≈ mild tail,
    /// 1.0 ≈ heavy tail).
    LogNormal { median_us: f64, sigma: f64 },
    /// Per-directed-link fixed latency, drawn once from `[min_us, max_us]`
    /// by hashing `(from, to, salt)`. Asymmetric: `a → b` and `b → a`
    /// differ, like real asymmetric routes.
    PerLink { min_us: u64, max_us: u64, salt: u64 },
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::Constant { us: 1_000 }
    }
}

impl LatencyModel {
    /// Short label for reports and bench JSON.
    pub fn label(&self) -> &'static str {
        match self {
            LatencyModel::Constant { .. } => "constant",
            LatencyModel::Uniform { .. } => "uniform",
            LatencyModel::LogNormal { .. } => "lognormal",
            LatencyModel::PerLink { .. } => "perlink",
        }
    }

    /// Sample the link latency of one message.
    pub fn sample(&self, from: PeerId, to: PeerId, rng: &mut StdRng) -> u64 {
        match *self {
            LatencyModel::Constant { us } => us,
            LatencyModel::Uniform { min_us, max_us } => {
                assert!(min_us <= max_us, "uniform latency: min > max");
                rng.gen_range(min_us..=max_us)
            }
            LatencyModel::LogNormal { median_us, sigma } => {
                // Box–Muller; ln(median) is the log-space mean.
                let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let x = (median_us.max(1.0).ln() + sigma * z).exp();
                x.clamp(1.0, 60_000_000.0) as u64 // cap at 60 s of virtual time
            }
            LatencyModel::PerLink { min_us, max_us, salt } => {
                assert!(min_us <= max_us, "per-link latency: min > max");
                let h = mix64((from.0 as u64) << 32 | to.0 as u64, salt ^ 0x9E37_79B9_7F4A_7C15);
                min_us + h % (max_us - min_us + 1)
            }
        }
    }
}

/// SplitMix64 finalizer — stable per-link hashing.
fn mix64(x: u64, salt: u64) -> u64 {
    let mut z = x.wrapping_add(salt).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Message loss with timeout-driven retransmission. A lost attempt costs
/// `timeout_us` before the sender retries; after `max_retries` losses the
/// message is delivered on the final attempt regardless, so simulated
/// queries always terminate (the real protocol would surface an error —
/// modeling that belongs to the churn machinery, which kills peers
/// outright).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossModel {
    /// Per-attempt loss probability, `0.0` disables loss entirely.
    pub p: f64,
    /// Retransmission timeout.
    pub timeout_us: u64,
    /// Maximum retransmissions per message.
    pub max_retries: u32,
}

impl Default for LossModel {
    fn default() -> Self {
        Self { p: 0.0, timeout_us: 200_000, max_retries: 3 }
    }
}

impl LossModel {
    /// Sample the loss penalty of one message: `(added_us, retransmissions)`.
    pub fn sample(&self, rng: &mut StdRng) -> (u64, u32) {
        if self.p <= 0.0 {
            return (0, 0);
        }
        let mut retx = 0u32;
        while retx < self.max_retries && rng.gen_bool(self.p.min(1.0)) {
            retx += 1;
        }
        (self.timeout_us * retx as u64, retx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn constant_is_constant() {
        let m = LatencyModel::Constant { us: 777 };
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(m.sample(PeerId(1), PeerId(2), &mut r), 777);
        }
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let m = LatencyModel::Uniform { min_us: 100, max_us: 200 };
        let mut r = rng();
        for _ in 0..500 {
            let x = m.sample(PeerId(0), PeerId(1), &mut r);
            assert!((100..=200).contains(&x));
        }
    }

    #[test]
    fn lognormal_median_is_roughly_right() {
        let m = LatencyModel::LogNormal { median_us: 10_000.0, sigma: 0.5 };
        let mut r = rng();
        let mut xs: Vec<u64> = (0..2_000).map(|_| m.sample(PeerId(0), PeerId(1), &mut r)).collect();
        xs.sort_unstable();
        let median = xs[xs.len() / 2];
        assert!((7_000..14_000).contains(&median), "median {median} far from configured 10000");
        // Right-skew: the mean exceeds the median for sigma > 0.
        let mean = xs.iter().sum::<u64>() / xs.len() as u64;
        assert!(mean > median);
    }

    #[test]
    fn per_link_is_stable_and_asymmetric() {
        let m = LatencyModel::PerLink { min_us: 1_000, max_us: 50_000, salt: 3 };
        let mut r = rng();
        let ab1 = m.sample(PeerId(4), PeerId(9), &mut r);
        let ab2 = m.sample(PeerId(4), PeerId(9), &mut r);
        assert_eq!(ab1, ab2, "per-link latency must be stable");
        // Over many pairs, at least one direction differs.
        let asym = (0..32u32).any(|i| {
            m.sample(PeerId(i), PeerId(i + 1), &mut r) != m.sample(PeerId(i + 1), PeerId(i), &mut r)
        });
        assert!(asym, "per-link model should be directionally asymmetric");
    }

    #[test]
    fn loss_penalty_bounded_and_off_by_default() {
        let mut r = rng();
        assert_eq!(LossModel::default().sample(&mut r), (0, 0));
        let lossy = LossModel { p: 0.9, timeout_us: 1_000, max_retries: 4 };
        for _ in 0..200 {
            let (us, retx) = lossy.sample(&mut r);
            assert!(retx <= 4);
            assert_eq!(us, 1_000 * retx as u64);
        }
    }
}
