//! Seed-stream derivation, in one place.
//!
//! The driver and the benches need many independent RNG streams from one
//! user-facing `seed`: one per simulated client, one per fork of a warm
//! checkpoint, and so on. Historically each site mixed its own ad-hoc
//! constant inline (`seed ^ (0x00C1_1E47 + c).wrapping_mul(0x9E37)` in the
//! driver, a cousin in the scale core); this module is the single,
//! documented home for that mixing.
//!
//! [`derive`] is intentionally bit-exact with the old inline formula —
//! every pinned artifact (latency sweeps, regress baselines, snapshot
//! round-trips) depends on client streams staying put. The heavy stateless
//! per-event hash used by the million-peer scale core lives here too as
//! [`mix`]; it needs stronger diffusion than `derive` because its outputs
//! feed latencies directly rather than seeding a full xoshiro state.
//!
//! Stream namespaces are disambiguated by a per-purpose constant, not by
//! argument order: `derive(seed, CLIENT_STREAM, 3)` (client #3) can never
//! collide with `derive(seed, FORK_STREAM, 3)` (fork #3).

/// Stream namespace for per-client driver RNGs (arrival jitter, workload
/// string choice, think-time sampling).
pub const CLIENT_STREAM: u64 = 0x00C1_1E47;

/// Stream namespace for forked runs branched off one warm checkpoint:
/// fork `i` of a snapshot taken under `seed` runs under
/// `derive(seed, FORK_STREAM, i)` when the caller asks for divergence.
pub const FORK_STREAM: u64 = 0x00F0_524B;

/// Stream namespace for fault-plan scripting (event-time jitter in
/// [`FaultPlan::periodic`](crate::FaultPlan::periodic)): period `k` of a
/// plan built under `seed` jitters under `derive(seed, FAULT_STREAM, k)`.
/// Distinct from the client and fork namespaces so the same user seed
/// never phase-locks fault times to arrival times.
pub const FAULT_STREAM: u64 = 0x00FA_017E;

/// Derive the seed for stream `idx` of namespace `stream` from the
/// user-facing `seed`.
///
/// Bit-exact with the historical inline formula
/// `seed ^ (stream + idx).wrapping_mul(0x9E37)` — do not "improve" the
/// mixing here; pinned artifacts depend on it. The multiplier is a
/// golden-ratio prefix (`0x9E37…`), enough to spread consecutive indices
/// across the seed space before the xor; the derived value seeds a full
/// xoshiro256++ state (SplitMix64 expansion), which supplies the real
/// avalanche.
#[inline]
pub fn derive(seed: u64, stream: u64, idx: u64) -> u64 {
    seed ^ stream.wrapping_add(idx).wrapping_mul(0x9E37)
}

/// Stateless per-event hash used by the million-peer scale core: a
/// SplitMix64-style finalizer over `(seed, qid, step, salt)`. Unlike
/// [`derive`] its output is consumed *directly* (link jitter, key choice,
/// arrival offsets), so it needs full 64-bit avalanche.
///
/// Bit-exact with the former private `mix` in `scale.rs` — the `ScaleOutcome`
/// checksum pins it.
#[inline]
pub fn mix(seed: u64, qid: u32, step: u32, salt: u64) -> u64 {
    let mut z = seed
        ^ (qid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (step as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ salt.wrapping_mul(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The driver derived client seeds inline for seven PRs; pinned sweep
    /// artifacts notice a single flipped bit. Pin `derive` to the exact
    /// legacy expression.
    #[test]
    fn derive_matches_the_legacy_inline_formula() {
        for seed in [0u64, 42, 0xDEAD_BEEF, u64::MAX] {
            for c in 0..64u64 {
                let legacy = seed ^ (0x00C1_1E47u64 + c).wrapping_mul(0x9E37);
                assert_eq!(derive(seed, CLIENT_STREAM, c), legacy, "seed={seed} c={c}");
            }
        }
    }

    /// `mix` feeds latencies, key choices and arrival offsets directly;
    /// the `ScaleOutcome` checksum pins its exact output. Pin the formula
    /// against the literal legacy expression it replaced.
    #[test]
    fn mix_matches_the_legacy_scale_core_formula() {
        let legacy = |seed: u64, qid: u32, step: u32, salt: u64| {
            let mut z = seed
                ^ (qid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (step as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
                ^ salt.wrapping_mul(0x94D0_49BB_1331_11EB);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for (seed, qid, step, salt) in
            [(7u64, 0u32, 0u32, 0x1111u64), (7, 3, 9, 0xA11C), (42, 1000, 1 << 20, 0xF0)]
        {
            assert_eq!(mix(seed, qid, step, salt), legacy(seed, qid, step, salt));
        }
    }

    #[test]
    fn streams_do_not_collide_across_namespaces() {
        let seed = 1234;
        for i in 0..256 {
            assert_ne!(derive(seed, CLIENT_STREAM, i), derive(seed, FORK_STREAM, i));
            assert_ne!(derive(seed, CLIENT_STREAM, i), derive(seed, FAULT_STREAM, i));
            assert_ne!(derive(seed, FORK_STREAM, i), derive(seed, FAULT_STREAM, i));
        }
    }

    #[test]
    fn consecutive_indices_yield_distinct_seeds() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..4096u64 {
            assert!(seen.insert(derive(7, CLIENT_STREAM, i)), "collision at idx {i}");
        }
    }
}
