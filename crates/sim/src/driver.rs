//! The concurrent-workload driver: replays the paper's §6 query mix as `N`
//! concurrent clients against a simulated network, under a configurable
//! latency model, arrival process and churn schedule — and reports
//! throughput plus p50/p95/p99 latency per operator.
//!
//! Queries execute as **interleaved steps on the event queue**: every query
//! is a resumable [`ExecStep`] task (`sqo-core`'s stepped operators), and
//! the driver pops task steps, arrivals and churn events off one
//! [`ShardedQueue`] in global virtual-time order. A step is one bounded chunk
//! of operator work — typically a single routed sub-request (a probe
//! branch, an object-fetch branch, one hop sequence) — charged against the
//! shared per-peer service queues of [`NetSim`](crate::NetSim). Because
//! steps execute in time order across *all* in-flight queries, contention
//! is symmetric: an early-arriving long query queues behind the traffic of
//! queries that arrive while it is still in flight, and vice versa. (The
//! pre-refactor driver executed each query atomically, so earlier-simulated
//! queries could not see later arrivals; that one-sided approximation is
//! gone.)
//!
//! Everything is deterministic: the driver installs a fresh `NetSim`, seeds
//! every stream from [`DriverConfig::seed`], and schedules all events on
//! one [`ShardedQueue`] with FIFO tie-breaking (a task re-enqueueing a step
//! at the current timestamp goes behind already-queued same-time events).
//! Two runs with the same inputs produce byte-identical reports.

use crate::fault::{FaultKind, FaultPlan};
use crate::netsim::{install, set_installed_loss, SimConfig};
use crate::report::{LatencySummary, OperatorLatency};
use crate::seed;
use crate::shard::ShardedQueue;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use sqo_core::{
    BrokerConfig, BrokerCounters, CacheBatchBroker, ExecStep, JoinOptions, JoinTask, JoinWindow,
    QueryStats, QueryTask, SimilarTask, SimilarityEngine, StepOutcome, Strategy, TopNTask,
};
use sqo_datasets::ZipfSampler;
use sqo_obs::{LogHistogram, MetricsRegistry};
use sqo_overlay::{PeerId, ReplicationPolicy, SimLatency, TraceEvent, TraceTrack};
use sqo_plan::{PlannerEnv, PreparedQuery};
use sqo_storage::Value;
use std::collections::BTreeMap;

/// How clients space their queries.
#[derive(Debug, Clone, PartialEq)]
pub enum Arrival {
    /// Open loop: every client issues queries at Poisson arrivals with the
    /// given mean interarrival time, regardless of completions — the
    /// production-traffic model; queries pile up when the network is slow.
    Poisson { mean_interarrival_us: u64 },
    /// Closed loop: a client issues its next query `think_us` after the
    /// previous one completes. `Closed { 0 }` with one client is the serial
    /// baseline every concurrency comparison starts from.
    Closed { think_us: u64 },
    /// Explicit first arrivals: client `c` starts at `offsets_us[c % len]`;
    /// its subsequent queries follow closed-loop with zero think time.
    /// This is how the symmetry tests control exactly which queries
    /// overlap.
    Explicit { offsets_us: Vec<u64> },
}

/// A scheduled churn step: at `at_us`, kill `fail_fraction` of all peers,
/// then revive `revive_fraction` of the (now) dead ones — the paper's
/// join/leave churn in one event. `revive_fraction: 0.0` is the historical
/// kill-only wave and consumes no extra randomness, so old schedules
/// reproduce bit-exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnEvent {
    pub at_us: u64,
    pub fail_fraction: f64,
    /// Fraction of **all** peers to revive from the dead set right after
    /// the kill wave (capped by the number of dead peers).
    pub revive_fraction: f64,
}

impl ChurnEvent {
    /// A kill-only wave — the pre-revival constructor every existing
    /// schedule used.
    pub fn kill(at_us: u64, fail_fraction: f64) -> Self {
        Self { at_us, fail_fraction, revive_fraction: 0.0 }
    }
}

/// One query template of the workload mix.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryKind {
    /// `Similar(s, attr, d)`.
    Similar { d: usize },
    /// String top-N (`N` nearest neighbors up to `d_max`).
    TopN { n: usize, d_max: usize },
    /// Similarity self-join over the workload attribute, with a bounded
    /// outstanding-request window (`window` per-left selections pipelined
    /// from the initiator; `Fixed(1)` = the paper's serial loop,
    /// [`JoinWindow::Auto`] = AIMD congestion control).
    SimJoin { d: usize, left_limit: Option<usize>, window: JoinWindow },
    /// A VQL `dist()` filter query over the workload attribute.
    Vql { d: usize },
    /// A multi-operator plan pipeline — prefix-range select over the
    /// workload attribute (the drawn string's first two characters), its
    /// rows joined against the attribute at distance `d`, best `n` pairs
    /// kept. Expressible only through the plan API, so it always compiles
    /// through `sqo-plan` regardless of [`ApiMode`].
    Pipeline { d: usize, n: usize, left_limit: Option<usize>, window: JoinWindow },
}

impl QueryKind {
    /// Operator family, the grouping key of the latency report.
    pub fn label(&self) -> &'static str {
        match self {
            QueryKind::Similar { .. } => "similar",
            QueryKind::TopN { .. } => "topn",
            QueryKind::SimJoin { .. } => "simjoin",
            QueryKind::Vql { .. } => "vql",
            QueryKind::Pipeline { .. } => "pipeline",
        }
    }
}

/// Which surface the driver dispatches [`QueryKind`]s through.
///
/// `Plan` (the default) compiles every template into a `sqo-plan` logical
/// plan prepared against the engine's planner environment — the driver's
/// dispatch is a thin shim over the unified IR. `Legacy` constructs the
/// per-operator core tasks directly, exactly as the pre-IR driver did; it
/// exists as the A/B baseline the latency bench uses to pin that the plan
/// path adds no overhead. Both modes execute the identical stepped tasks,
/// so reports are byte-identical for plan-expressible mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApiMode {
    /// Dispatch through prepared logical plans (`sqo-plan`).
    Plan,
    /// Construct the legacy per-operator tasks directly.
    Legacy,
}

/// Workload-driver configuration.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    pub clients: usize,
    pub queries_per_client: usize,
    pub arrival: Arrival,
    /// Query templates, assigned round-robin (offset per client).
    pub mix: Vec<QueryKind>,
    pub strategy: Strategy,
    /// Virtual-time model installed on the network for the run.
    pub sim: SimConfig,
    /// Churn schedule (peers die mid-workload; queries must still
    /// terminate).
    pub churn: Vec<ChurnEvent>,
    /// Deterministic fault script replayed on the event queue alongside
    /// arrivals and churn: crash waves, targeted partition wipes, revivals,
    /// transient loss spikes. The default empty plan injects nothing and
    /// changes nothing.
    pub faults: FaultPlan,
    /// Self-healing: when set, the driver runs one
    /// [`repair_epoch`](sqo_overlay::Network::repair_epoch) pass after
    /// every churn and membership-fault event, recruiting alive peers into
    /// under-replicated partitions (charged as real traffic). `None`
    /// (default) leaves the overlay to decay.
    pub repair: Option<ReplicationPolicy>,
    /// Hot-path services for the run: when any is enabled the driver
    /// installs a fresh [`CacheBatchBroker`] on the engine (and removes any
    /// stale one otherwise), so every run owns its own cache state.
    pub cache: BrokerConfig,
    /// Query-string skew: `0.0` picks uniformly from the pool (the PR 2
    /// baseline behavior); `> 0.0` draws string ranks from a Zipf
    /// distribution with this exponent — the production-shaped workload
    /// where popular strings (and their gram partitions) dominate.
    pub zipf_s: f64,
    /// `true` pins each client to one initiator peer for the whole run (a
    /// client keeps its access point, which is what makes initiator-side
    /// caches meaningful); `false` draws a fresh random initiator per
    /// query (the PR 2 baseline behavior).
    pub sticky_initiators: bool,
    /// Which query surface dispatches the mix (plan shims vs direct legacy
    /// task construction — the bench's A/B axis).
    pub api: ApiMode,
    /// Event-queue lanes ([`ShardedQueue`]): each client's arrivals and
    /// task steps live on one of `shards` per-lane heaps, popped globally
    /// in `(time, push-sequence)` order. Every setting produces a
    /// byte-identical report (the sequence counter is global — pinned by a
    /// property test); larger values bound per-lane heap depth under very
    /// wide client counts. `0` is treated as `1`.
    pub shards: usize,
    pub seed: u64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        Self {
            clients: 4,
            queries_per_client: 5,
            arrival: Arrival::Poisson { mean_interarrival_us: 20_000 },
            mix: vec![
                QueryKind::Similar { d: 1 },
                QueryKind::TopN { n: 5, d_max: 3 },
                QueryKind::SimJoin { d: 1, left_limit: Some(8), window: JoinWindow::Fixed(1) },
            ],
            strategy: Strategy::QGrams,
            sim: SimConfig::default(),
            churn: Vec::new(),
            faults: FaultPlan::default(),
            repair: None,
            cache: BrokerConfig::default(),
            zipf_s: 0.0,
            sticky_initiators: false,
            api: ApiMode::Plan,
            shards: 1,
            seed: 7,
        }
    }
}

/// Hot-path service usage over one driven run (all zeros without a broker).
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize)]
pub struct CacheReport {
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// `hits / (hits + misses)`, 0 when the cache was never consulted.
    pub hit_rate: f64,
    /// Probe submissions that rode a coalescing channel another probe's
    /// route opened.
    pub probes_coalesced: u64,
    /// Routed exchanges that opened a coalescing channel.
    pub channels_opened: u64,
    /// Overlay messages the coalesced probes avoided.
    pub messages_saved: u64,
    /// Cache inserts the TinyLFU admission gate turned away (0 with the
    /// gate off).
    pub admission_rejects: u64,
}

impl From<BrokerCounters> for CacheReport {
    fn from(c: BrokerCounters) -> Self {
        Self {
            cache_hits: c.cache_hits,
            cache_misses: c.cache_misses,
            hit_rate: c.hit_rate(),
            probes_coalesced: c.probes_coalesced,
            channels_opened: c.channels_opened,
            messages_saved: c.messages_saved,
            admission_rejects: c.admission_rejects,
        }
    }
}

/// Accumulated self-healing activity over a driven run (all zeros when
/// [`DriverConfig::repair`] is `None`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize)]
pub struct RepairTotals {
    /// Repair passes executed (one per churn/fault membership event).
    pub passes: u64,
    /// Peers recruited into under-replicated partitions, summed over all
    /// passes.
    pub recruited: u64,
    /// Payload bytes the recruitments copied, summed over all passes.
    pub bytes_copied: u64,
    /// Partitions with zero alive replicas as of the **last** pass — the
    /// unrecoverable residue repair cannot touch (gauge, not a sum).
    pub lost_partitions: u64,
    /// Deficient partitions the last pass could not fully top up (gauge).
    pub unfilled_deficits: u64,
}

/// One phase's latency and degradation profile (see [`PhaseReport`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize)]
pub struct PhaseSummary {
    pub summary: LatencySummary,
    /// Answered / addressed partition legs over the phase's queries — 1.0
    /// when nothing was skipped or unreachable.
    pub completeness: f64,
    pub retries: u64,
    pub gave_up: u64,
}

/// The run split at its halfway point (by completion count): `early` is
/// the first half of completions, `late` the second. Under sustained churn
/// the comparison is the stationarity check — with repair on, `late`
/// should look like `early`; without it, completeness decays and tails
/// grow as replicas die off.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize)]
pub struct PhaseReport {
    pub early: PhaseSummary,
    pub late: PhaseSummary,
}

/// Outcome of a driven workload.
///
/// The typed fields (`total`, `cache`, `per_operator`) remain the
/// first-class views; [`DriverReport::metrics`] re-expresses the same run
/// under the unified dotted-name schema (`traffic.*`, `cache.*`,
/// `latency.*` — see [`MetricsRegistry`]) so every serializer emits one
/// shape.
#[derive(Debug, Clone, Serialize)]
pub struct DriverReport {
    /// Per-operator-family latency summaries, sorted by operator name.
    pub per_operator: Vec<OperatorLatency>,
    /// All queries together.
    pub overall: LatencySummary,
    /// Aggregated operator stats (traffic, probes, simulated latency).
    pub total: QueryStats,
    /// Hot-path service usage (hit rate, coalesced probes, messages saved).
    pub cache: CacheReport,
    /// The run under the unified metric schema: counters/gauges folded
    /// from `total` and `cache`, plus the overall and per-operator latency
    /// histograms (`latency.query_us`, `latency.<op>_us`).
    pub metrics: MetricsRegistry,
    pub queries_run: usize,
    /// Virtual time from first arrival to last completion.
    pub virtual_span_us: u64,
    /// Queries per virtual second.
    pub throughput_qps: f64,
    /// Early/late halves of the run — the stationarity view churn and
    /// repair experiments compare.
    pub phases: PhaseReport,
    /// Self-healing totals; `Some` exactly when [`DriverConfig::repair`]
    /// was configured.
    pub repair: Option<RepairTotals>,
    /// Human-readable anomalies the run survived (e.g. an arrival that
    /// found no alive initiator). Empty on a healthy run.
    pub diagnostics: Vec<String>,
}

#[derive(Clone, Copy)]
enum Ev {
    Arrive {
        client: usize,
    },
    /// Resume the in-flight task in `slot`.
    Step {
        slot: usize,
    },
    Churn {
        idx: usize,
    },
    /// Apply `cfg.faults.events[idx]`.
    Fault {
        idx: usize,
    },
    /// End of the loss spike scheduled by `cfg.faults.events[idx]`:
    /// restore the run's baseline loss model.
    FaultClear {
        idx: usize,
    },
}

/// One in-flight query: a resumable operator task plus its bookkeeping.
struct InFlight {
    task: Box<dyn ExecStep>,
    label: &'static str,
    client: usize,
    arrival_us: u64,
    /// Query trace track, allocated at arrival when a trace sink is
    /// installed; the driver attributes each of this task's steps to it.
    trace: Option<u64>,
}

/// The driver's mutable loop state, separated from the engine so a run can
/// pause at a quiesce boundary, walk itself into a [`DriverCheckpoint`],
/// and later be rebuilt to continue.
struct LoopState {
    client_rngs: Vec<StdRng>,
    issued: Vec<usize>,
    initiators: Option<Vec<PeerId>>,
    q: ShardedQueue<Ev>,
    flights: Vec<Option<InFlight>>,
    free_slots: Vec<usize>,
    by_operator: BTreeMap<&'static str, (LogHistogram, QueryStats)>,
    all_latencies: LogHistogram,
    total: QueryStats,
    queries_run: usize,
    first_start: u64,
    last_end: u64,
    /// First / second half of completions (latencies + absorbed stats) —
    /// the stationarity split of [`PhaseReport`].
    early: (LogHistogram, QueryStats),
    late: (LogHistogram, QueryStats),
    repair: RepairTotals,
    diagnostics: Vec<String>,
}

impl LoopState {
    fn fresh(engine: &mut SimilarityEngine, cfg: &DriverConfig) -> Self {
        // Per-client deterministic streams: query arguments and arrival
        // jitter. One documented derivation for every stream — see
        // [`crate::seed`].
        let mut client_rngs: Vec<StdRng> = (0..cfg.clients)
            .map(|c| StdRng::seed_from_u64(seed::derive(cfg.seed, seed::CLIENT_STREAM, c as u64)))
            .collect();
        // Sticky access points: each client keeps one initiator peer, which
        // is what gives its posting cache a working set to accumulate.
        let initiators: Option<Vec<PeerId>> =
            cfg.sticky_initiators.then(|| (0..cfg.clients).map(|_| engine.random_peer()).collect());

        // Client `c`'s arrivals and steps live on lane `c % shards`; pops
        // are in global `(time, push-sequence)` order, so the report is
        // invariant in the lane count.
        let mut q: ShardedQueue<Ev> = ShardedQueue::new(cfg.shards.max(1));
        for (idx, ev) in cfg.churn.iter().enumerate() {
            q.push(ev.at_us, 0, Ev::Churn { idx });
        }
        // Fault script: each event at its time; a loss spike additionally
        // schedules the restore of the baseline model.
        for (idx, ev) in cfg.faults.events.iter().enumerate() {
            q.push(ev.at_us, 0, Ev::Fault { idx });
            if let FaultKind::LossSpike { duration_us, .. } = ev.kind {
                q.push(ev.at_us.saturating_add(duration_us), 0, Ev::FaultClear { idx });
            }
        }
        // First arrivals.
        for (c, rng) in client_rngs.iter_mut().enumerate() {
            let t = match &cfg.arrival {
                Arrival::Poisson { mean_interarrival_us } => exp_sample(rng, *mean_interarrival_us),
                Arrival::Closed { .. } => 0,
                Arrival::Explicit { offsets_us } => offsets_us[c % offsets_us.len()],
            };
            q.push(t, c, Ev::Arrive { client: c });
        }

        Self {
            client_rngs,
            issued: vec![0usize; cfg.clients],
            initiators,
            q,
            flights: Vec::new(),
            free_slots: Vec::new(),
            by_operator: BTreeMap::new(),
            all_latencies: LogHistogram::new(),
            total: QueryStats::default(),
            queries_run: 0,
            first_start: u64::MAX,
            last_end: 0,
            early: (LogHistogram::new(), QueryStats::default()),
            late: (LogHistogram::new(), QueryStats::default()),
            repair: RepairTotals::default(),
            diagnostics: Vec::new(),
        }
    }

    /// Rebuild the loop from a checkpoint image (see [`resume_driver`]).
    fn restore(cfg: &DriverConfig, ckpt: DriverCheckpoint) -> Self {
        assert_eq!(ckpt.client_rngs.len(), cfg.clients, "checkpoint has a different client count");
        let entries = ckpt
            .queue
            .entries
            .into_iter()
            .map(|(at, seq, lane, ev)| {
                let ev = match ev {
                    EvSnap::Arrive { client } => Ev::Arrive { client: client as usize },
                    EvSnap::Churn { idx } => Ev::Churn { idx: idx as usize },
                    EvSnap::Fault { idx } => Ev::Fault { idx: idx as usize },
                    EvSnap::FaultClear { idx } => Ev::FaultClear { idx: idx as usize },
                };
                (at, seq, lane, ev)
            })
            .collect();
        let queue = crate::shard::QueueState {
            lanes: ckpt.queue.lanes,
            seq: ckpt.queue.seq,
            now_us: ckpt.queue.now_us,
            entries,
        };
        let by_operator = ckpt
            .by_operator
            .into_iter()
            .map(|(op, (c, s, mn, mx, buckets), stats)| {
                (static_label(&op), (LogHistogram::from_parts(c, s, mn, mx, buckets), stats))
            })
            .collect();
        let (c, s, mn, mx, buckets) = ckpt.all_latencies;
        let hist =
            |(c, s, mn, mx, buckets): HistParts| LogHistogram::from_parts(c, s, mn, mx, buckets);
        Self {
            client_rngs: ckpt.client_rngs.into_iter().map(StdRng::from_state_words).collect(),
            issued: ckpt.issued.into_iter().map(|n| n as usize).collect(),
            initiators: ckpt.initiators,
            q: ShardedQueue::from_state(queue),
            flights: Vec::new(),
            free_slots: Vec::new(),
            by_operator,
            all_latencies: LogHistogram::from_parts(c, s, mn, mx, buckets),
            total: ckpt.total,
            queries_run: ckpt.queries_run as usize,
            first_start: ckpt.first_start,
            last_end: ckpt.last_end,
            early: (hist(ckpt.early.0), ckpt.early.1),
            late: (hist(ckpt.late.0), ckpt.late.1),
            repair: ckpt.repair,
            diagnostics: ckpt.diagnostics,
        }
    }

    /// Walk the paused loop into an owned checkpoint. Only legal at a
    /// quiesce boundary: every flight slot must be empty, so the queue
    /// holds no `Step` events (the one variant that cannot be serialized —
    /// it indexes a live `Box<dyn ExecStep>` state machine).
    fn checkpoint(&self, engine: &mut SimilarityEngine) -> DriverCheckpoint {
        assert!(
            self.flights.iter().all(Option::is_none),
            "checkpoint requires an empty in-flight table"
        );
        let qs = self.q.export_state();
        let entries = qs
            .entries
            .into_iter()
            .map(|(at, seq, lane, ev)| {
                let ev = match ev {
                    Ev::Arrive { client } => EvSnap::Arrive { client: client as u32 },
                    Ev::Churn { idx } => EvSnap::Churn { idx: idx as u32 },
                    Ev::Fault { idx } => EvSnap::Fault { idx: idx as u32 },
                    Ev::FaultClear { idx } => EvSnap::FaultClear { idx: idx as u32 },
                    Ev::Step { .. } => unreachable!("no steps pending at a quiesce boundary"),
                };
                (at, seq, lane, ev)
            })
            .collect();
        DriverCheckpoint {
            queue: crate::shard::QueueState {
                lanes: qs.lanes,
                seq: qs.seq,
                now_us: qs.now_us,
                entries,
            },
            issued: self.issued.iter().map(|&n| n as u64).collect(),
            initiators: self.initiators.clone(),
            client_rngs: self.client_rngs.iter().map(StdRng::state_words).collect(),
            by_operator: self
                .by_operator
                .iter()
                .map(|(&op, (lats, stats))| (op.to_string(), lats.export_parts(), *stats))
                .collect(),
            all_latencies: self.all_latencies.export_parts(),
            total: self.total,
            queries_run: self.queries_run as u64,
            first_start: self.first_start,
            last_end: self.last_end,
            early: (self.early.0.export_parts(), self.early.1),
            late: (self.late.0.export_parts(), self.late.1),
            repair: self.repair,
            diagnostics: self.diagnostics.clone(),
            netsim: crate::netsim::export_installed(engine)
                .expect("the driver installed a NetSim on this engine"),
        }
    }
}

/// Operator labels are `&'static str` inside the loop (they come from
/// [`QueryKind::label`]); a restored checkpoint maps them back.
fn static_label(op: &str) -> &'static str {
    match op {
        "similar" => "similar",
        "topn" => "topn",
        "simjoin" => "simjoin",
        "vql" => "vql",
        "pipeline" => "pipeline",
        other => panic!("unknown operator label in checkpoint: {other}"),
    }
}

/// A serializable pending driver event. `Step` has no image: checkpoints
/// are taken only at quiesce boundaries, where no task is in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvSnap {
    Arrive { client: u32 },
    Churn { idx: u32 },
    Fault { idx: u32 },
    FaultClear { idx: u32 },
}

/// The owned image of a paused driver run: pending arrivals/churn with
/// their queue positions, every per-client RNG stream, the accumulated
/// histograms and stats, and the virtual-time charger's state. Static
/// inputs (the [`DriverConfig`], attribute, string pool, and the engine's
/// world state) are *not* carried here — [`resume_driver`] takes them
/// again, and `sqo-snap`'s artifact bundles the world alongside.
#[derive(Debug, Clone)]
pub struct DriverCheckpoint {
    pub queue: crate::shard::QueueState<EvSnap>,
    /// Queries issued so far, per client.
    pub issued: Vec<u64>,
    /// Sticky initiator peers (when [`DriverConfig::sticky_initiators`]).
    pub initiators: Option<Vec<PeerId>>,
    /// xoshiro256++ state words of each client stream.
    pub client_rngs: Vec<[u64; 4]>,
    /// Per-operator accumulators: label, latency-histogram parts
    /// ([`LogHistogram::export_parts`]), absorbed stats.
    pub by_operator: Vec<(String, HistParts, QueryStats)>,
    pub all_latencies: HistParts,
    pub total: QueryStats,
    pub queries_run: u64,
    pub first_start: u64,
    pub last_end: u64,
    /// Early/late completion-half accumulators (see [`PhaseReport`]).
    pub early: (HistParts, QueryStats),
    pub late: (HistParts, QueryStats),
    /// Self-healing totals so far.
    pub repair: RepairTotals,
    /// Anomalies recorded so far.
    pub diagnostics: Vec<String>,
    /// The installed [`NetSim`](crate::NetSim)'s image.
    pub netsim: crate::netsim::NetSimState,
}

/// `(count, sum, min, max, buckets)` — see [`LogHistogram::export_parts`].
pub type HistParts = (u64, u64, u64, u64, Vec<(u32, u64)>);

/// Outcome of [`run_driver_until`]: either the workload drained before the
/// stop bound mattered, or the run paused at the first quiesce boundary at
/// or after it.
// One value exists per run, immediately destructured — the variant size
// gap is irrelevant.
#[allow(clippy::large_enum_variant)]
pub enum DriverPhase {
    Done(DriverReport),
    Paused(DriverCheckpoint),
}

/// Run the driven workload. Installs a fresh [`NetSim`](crate::NetSim) (replacing any
/// sink already on the network). Two identical invocations on **freshly
/// built engines** yield identical reports; re-driving the *same* engine
/// is not a reproduction — the first run advances the network's RNG and,
/// under a churn schedule, permanently kills peers.
pub fn run_driver(
    engine: &mut SimilarityEngine,
    attr: &str,
    strings: &[String],
    cfg: &DriverConfig,
) -> DriverReport {
    match drive(engine, attr, strings, cfg, None) {
        DriverPhase::Done(report) => report,
        DriverPhase::Paused(_) => unreachable!("no stop bound was given"),
    }
}

/// Run the driven workload at most to the first **quiesce boundary** at or
/// after `stop_us`: the first moment in virtual time where no query is in
/// flight and the next pending event is at `>= stop_us`. In-flight task
/// state machines cannot be serialized, so a checkpoint waits for the
/// event loop to drain them; under heavy overlap the boundary can land
/// well after `stop_us`, and a workload whose queries never all drain
/// simply runs to completion ([`DriverPhase::Done`]).
///
/// On [`DriverPhase::Paused`] the engine is left live at the boundary —
/// network, broker and installed `NetSim` all reflect the paused run —
/// ready for `sqo-snap` to walk into an artifact.
pub fn run_driver_until(
    engine: &mut SimilarityEngine,
    attr: &str,
    strings: &[String],
    cfg: &DriverConfig,
    stop_us: u64,
) -> DriverPhase {
    drive(engine, attr, strings, cfg, Some(stop_us))
}

/// Resume a paused run from its checkpoint image. `engine` must be the
/// restored world the checkpoint was taken against (same peer count, same
/// network RNG position, same broker state — `sqo-snap` rebuilds all of it);
/// `cfg`, `attr` and `strings` must equal the original run's. The restored
/// [`NetSim`](crate::NetSim) is installed from the image — unlike
/// [`run_driver`], nothing is reset: the engine's broker is left exactly as
/// restored.
///
/// Running the remainder produces a report byte-identical to the
/// uninterrupted run's.
pub fn resume_driver(
    engine: &mut SimilarityEngine,
    attr: &str,
    strings: &[String],
    cfg: &DriverConfig,
    ckpt: DriverCheckpoint,
) -> DriverReport {
    assert!(!strings.is_empty(), "driver needs a non-empty string pool");
    assert!(!cfg.mix.is_empty(), "empty query mix");
    crate::netsim::install_restored(engine, cfg.sim, ckpt.netsim.clone());
    // A pending `FaultClear` whose `Fault` is no longer pending means its
    // loss spike fired before the checkpoint and has not ended: the
    // restored NetSim carries the baseline config, so re-arm the spike's
    // model. With overlapping spikes the latest-applied one is in force.
    let still_scheduled: Vec<usize> = ckpt
        .queue
        .entries
        .iter()
        .filter_map(|(_, _, _, ev)| match ev {
            EvSnap::Fault { idx } => Some(*idx as usize),
            _ => None,
        })
        .collect();
    let active_spike = ckpt
        .queue
        .entries
        .iter()
        .filter_map(|(_, _, _, ev)| match ev {
            EvSnap::FaultClear { idx } if !still_scheduled.contains(&(*idx as usize)) => {
                Some(*idx as usize)
            }
            _ => None,
        })
        .max_by_key(|&i| cfg.faults.events[i].at_us);
    if let Some(i) = active_spike {
        if let FaultKind::LossSpike { loss, .. } = cfg.faults.events[i].kind {
            set_installed_loss(engine, loss);
        }
    }
    let mut st = LoopState::restore(cfg, ckpt);
    match run_loop(engine, attr, strings, cfg, &mut st, None) {
        DriverPhase::Done(report) => report,
        DriverPhase::Paused(_) => unreachable!("no stop bound was given"),
    }
}

fn drive(
    engine: &mut SimilarityEngine,
    attr: &str,
    strings: &[String],
    cfg: &DriverConfig,
    stop_us: Option<u64>,
) -> DriverPhase {
    assert!(!strings.is_empty(), "driver needs a non-empty string pool");
    assert!(cfg.clients >= 1 && cfg.queries_per_client >= 1, "empty workload");
    assert!(!cfg.mix.is_empty(), "empty query mix");
    if let Arrival::Explicit { offsets_us } = &cfg.arrival {
        assert!(!offsets_us.is_empty(), "explicit arrivals need at least one offset");
    }
    install(engine, cfg.sim);
    // The driver owns the run's broker: fresh state per run, stale brokers
    // from a previous run removed.
    if cfg.cache.any_enabled() {
        engine.set_broker(Box::new(CacheBatchBroker::new(cfg.cache)));
    } else {
        engine.clear_broker();
    }
    let mut st = LoopState::fresh(engine, cfg);
    run_loop(engine, attr, strings, cfg, &mut st, stop_us)
}

/// The event loop plus report assembly: pops arrivals, task steps and
/// churn in global virtual-time order until the queue drains (or, with a
/// stop bound, until the first quiesce boundary at or after it).
fn run_loop(
    engine: &mut SimilarityEngine,
    attr: &str,
    strings: &[String],
    cfg: &DriverConfig,
    st: &mut LoopState,
    stop_us: Option<u64>,
) -> DriverPhase {
    // The planner environment is invariant for the run (defaults and
    // broker services are fixed before the loop starts): snapshot it once
    // instead of per-dispatch.
    let planner_env = PlannerEnv::of(engine);
    let zipf = (cfg.zipf_s > 0.0).then(|| ZipfSampler::new(strings.len(), cfg.zipf_s));

    let LoopState {
        client_rngs,
        issued,
        initiators,
        q,
        flights,
        free_slots,
        by_operator,
        all_latencies,
        total,
        queries_run,
        first_start,
        last_end,
        early,
        late,
        repair,
        diagnostics,
    } = st;

    // Completion-count split point of the early/late phase view.
    let half = (cfg.clients * cfg.queries_per_client) / 2;

    let paused = loop {
        // Quiesce check BEFORE popping: pausing must not consume an event.
        if let Some(stop) = stop_us {
            if flights.iter().all(Option::is_none)
                && q.peek_next_us().is_some_and(|next| next >= stop)
            {
                break true;
            }
        }
        let Some((t, ev)) = q.pop() else { break false };
        match ev {
            Ev::Churn { idx } => {
                engine.network_mut().fail_random_fraction(cfg.churn[idx].fail_fraction);
                let fail_permille = (cfg.churn[idx].fail_fraction * 1000.0) as u64;
                // The revival branch is skipped entirely at 0.0 — no RNG
                // draw, no extra trace arg — so kill-only schedules stay
                // bit-exact with their pre-revival behavior.
                let revive = cfg.churn[idx].revive_fraction;
                if revive > 0.0 {
                    engine.network_mut().revive_random_fraction(revive);
                }
                engine.network().trace_with(|| {
                    let ev = TraceEvent::instant(t, TraceTrack::Control, "churn", "run")
                        .arg("fail_permille", fail_permille);
                    if revive > 0.0 {
                        ev.arg("revive_permille", (revive * 1000.0) as u64)
                    } else {
                        ev
                    }
                });
                run_repair(engine, cfg, t, repair);
            }
            Ev::Fault { idx } => {
                let fault = cfg.faults.events[idx];
                let membership = match fault.kind {
                    FaultKind::Crash { fraction } => {
                        engine.network_mut().fail_random_fraction(fraction);
                        true
                    }
                    FaultKind::WipePartition { part } => {
                        engine.network_mut().fail_partition(part);
                        true
                    }
                    FaultKind::Revive { fraction } => {
                        engine.network_mut().revive_random_fraction(fraction);
                        true
                    }
                    FaultKind::LossSpike { loss, .. } => {
                        set_installed_loss(engine, loss);
                        false
                    }
                };
                engine.network().trace_with(|| {
                    TraceEvent::instant(t, TraceTrack::Control, "fault", "run")
                        .arg("kind", fault.kind.label())
                        .arg("idx", idx)
                });
                // Loss spikes change no membership; repair has nothing to
                // scan for.
                if membership {
                    run_repair(engine, cfg, t, repair);
                }
            }
            Ev::FaultClear { idx } => {
                set_installed_loss(engine, cfg.sim.loss);
                engine.network().trace_with(|| {
                    TraceEvent::instant(t, TraceTrack::Control, "fault-clear", "run")
                        .arg("kind", cfg.faults.events[idx].kind.label())
                        .arg("idx", idx)
                });
            }
            Ev::Arrive { client } => {
                let kind = cfg.mix[(issued[client] + client) % cfg.mix.len()].clone();
                issued[client] += 1;
                let s = {
                    let rng = &mut client_rngs[client];
                    let idx = match &zipf {
                        Some(z) => z.sample(rng),
                        None => rng.gen_range(0..strings.len()),
                    };
                    strings[idx].clone()
                };
                let from = match initiators.as_mut() {
                    Some(per_client) => {
                        let cur = per_client[client];
                        if engine.network().peer_alive(cur) {
                            Some(cur)
                        } else {
                            // The client's access point died. The overlay
                            // survived (that is the whole point of
                            // replication), so the client reconnects to a
                            // fresh alive peer instead of dying with its
                            // entry node — recorded as an anomaly, since a
                            // re-pin resets initiator-side cache locality.
                            let next = engine.try_random_peer();
                            if let Some(p) = next {
                                per_client[client] = p;
                                diagnostics.push(format!(
                                    "client {client}: sticky initiator {} died; re-pinned \
                                     to {} at t={t}us",
                                    cur.0, p.0
                                ));
                            }
                            next
                        }
                    }
                    None => engine.try_random_peer(),
                };
                let Some(from) = from else {
                    // Every peer is dead: the query cannot even start.
                    // Record the anomaly, count the slot as issued (done
                    // above) and keep the client's arrival process alive so
                    // the run drains instead of deadlocking — a later
                    // revival can still serve its remaining queries.
                    diagnostics.push(format!(
                        "client {client} query {}: no alive initiator at t={t}us; skipped",
                        issued[client]
                    ));
                    match &cfg.arrival {
                        Arrival::Poisson { mean_interarrival_us } => {
                            if issued[client] < cfg.queries_per_client {
                                let next =
                                    t + exp_sample(&mut client_rngs[client], *mean_interarrival_us);
                                q.push(next, client, Ev::Arrive { client });
                            }
                        }
                        Arrival::Closed { think_us } => {
                            if issued[client] < cfg.queries_per_client {
                                q.push(t + (*think_us).max(1), client, Ev::Arrive { client });
                            }
                        }
                        Arrival::Explicit { .. } => {
                            if issued[client] < cfg.queries_per_client {
                                q.push(t + 1, client, Ev::Arrive { client });
                            }
                        }
                    }
                    continue;
                };
                let trace = engine
                    .network()
                    .has_trace_sink()
                    .then(|| engine.network_mut().next_trace_query_id());
                let flight = InFlight {
                    task: build_task(&planner_env, attr, &s, from, &kind, cfg.strategy, cfg.api),
                    label: kind.label(),
                    client,
                    arrival_us: t,
                    trace,
                };
                let slot = match free_slots.pop() {
                    Some(slot) => {
                        flights[slot] = Some(flight);
                        slot
                    }
                    None => {
                        flights.push(Some(flight));
                        flights.len() - 1
                    }
                };
                // The task's first step runs at the arrival time; steps of
                // other in-flight queries interleave with it from then on.
                q.push(t, client, Ev::Step { slot });

                // Open-loop arrivals are independent of completions.
                if let Arrival::Poisson { mean_interarrival_us } = &cfg.arrival {
                    if issued[client] < cfg.queries_per_client {
                        let next = t + exp_sample(&mut client_rngs[client], *mean_interarrival_us);
                        q.push(next, client, Ev::Arrive { client });
                    }
                }
            }
            Ev::Step { slot } => {
                let flight = flights[slot].as_mut().expect("step for a finished task");
                // Attribute this step's charges (message instants, step
                // spans) to the flight's query track.
                let trace = flight.trace;
                if trace.is_some() {
                    engine.network_mut().set_trace_query(trace);
                }
                let outcome = flight.task.step(engine, t);
                if trace.is_some() {
                    engine.network_mut().set_trace_query(None);
                }
                match outcome {
                    StepOutcome::Yield { at_us } => {
                        let client = flights[slot].as_ref().expect("still in flight").client;
                        q.push(at_us, client, Ev::Step { slot });
                    }
                    StepOutcome::Done(stats) => {
                        let flight = flights[slot].take().expect("checked above");
                        free_slots.push(slot);
                        // A query that produced no sim profile (an operator
                        // error path, or a run without timing events) must
                        // not poison the span accounting with start=0: pin
                        // its empty window to the arrival time.
                        let sim = stats.sim.unwrap_or(SimLatency {
                            start_us: flight.arrival_us,
                            end_us: flight.arrival_us,
                            ..Default::default()
                        });
                        if let Some(qid) = trace {
                            let (client, label) = (flight.client, flight.label);
                            engine.network().trace_with(|| {
                                TraceEvent::span(
                                    sim.start_us,
                                    sim.elapsed_us,
                                    TraceTrack::Query(qid),
                                    label,
                                    "query",
                                )
                                .arg("client", client)
                                .arg("messages", stats.traffic.messages)
                                .arg("cache_hits", stats.cache_hits)
                                .arg("cache_misses", stats.cache_misses)
                                .arg("parts_addressed", stats.partitions_addressed)
                                .arg("parts_answered", stats.partitions_answered)
                            });
                        }
                        let (lats, op_stats) = by_operator.entry(flight.label).or_default();
                        lats.record(sim.elapsed_us);
                        op_stats.absorb(&stats);
                        all_latencies.record(sim.elapsed_us);
                        total.absorb(&stats);
                        // Stationarity split: first half of completions vs
                        // the rest (skipped arrivals never complete, so a
                        // heavily-degraded run just has a thinner late
                        // half).
                        let phase = if *queries_run < half { &mut *early } else { &mut *late };
                        phase.0.record(sim.elapsed_us);
                        phase.1.absorb(&stats);
                        *queries_run += 1;
                        *first_start = (*first_start).min(sim.start_us);
                        *last_end = (*last_end).max(sim.end_us);

                        // Closed-loop clients think, then re-arrive.
                        let think = match &cfg.arrival {
                            Arrival::Closed { think_us } => Some(*think_us),
                            Arrival::Explicit { .. } => Some(0),
                            Arrival::Poisson { .. } => None,
                        };
                        if let Some(think_us) = think {
                            if issued[flight.client] < cfg.queries_per_client {
                                q.push(
                                    sim.end_us + think_us,
                                    flight.client,
                                    Ev::Arrive { client: flight.client },
                                );
                            }
                        }
                    }
                }
            }
        }
    };

    if paused {
        return DriverPhase::Paused(st.checkpoint(engine));
    }

    // The unified metric schema: counters and gauges folded from the run
    // totals, the latency distributions as histograms. The typed report
    // fields below stay as views over the same numbers.
    let mut metrics = MetricsRegistry::new();
    metrics.absorb_query_stats(&st.total);
    metrics.histogram_merge("latency.query_us", &st.all_latencies);
    for (op, (lats, _)) in &st.by_operator {
        metrics.histogram_merge(format!("latency.{op}_us"), lats);
    }

    let per_operator: Vec<OperatorLatency> = std::mem::take(&mut st.by_operator)
        .into_iter()
        .map(|(op, (lats, op_stats))| OperatorLatency {
            operator: op.to_string(),
            summary: LatencySummary::of_histogram(&lats),
            messages: op_stats.traffic.messages,
            // Queue time is attributed per operator from its own queries'
            // absorbed stats — not the run-wide total duplicated into
            // every row — so window adaptation shows up per op.
            queue_us: op_stats.sim.map(|s| s.queue_us).unwrap_or(0),
            cache_hits: op_stats.cache_hits,
            probes_coalesced: op_stats.probes_coalesced,
            window_peak: op_stats.join_window_peak,
            window_shrinks: op_stats.join_window_shrinks,
            completeness: op_stats.completeness(),
            retries: op_stats.retries,
            gave_up: op_stats.gave_up,
        })
        .collect();
    let virtual_span_us = st.last_end.saturating_sub(st.first_start.min(st.last_end));
    let throughput_qps = if virtual_span_us > 0 {
        st.queries_run as f64 / (virtual_span_us as f64 / 1_000_000.0)
    } else {
        0.0
    };
    let overall = LatencySummary::of_histogram(&st.all_latencies);
    let cache = engine.broker_counters().map(CacheReport::from).unwrap_or_default();
    if let Some(c) = engine.broker_counters() {
        metrics.absorb_broker_counters(&c);
    }
    metrics.counter_add("run.queries", st.queries_run as u64);
    metrics.gauge_set("run.throughput_qps", throughput_qps);
    // Self-healing visibility — emitted only when repair is configured, so
    // a repair-free run's registry is untouched.
    if cfg.repair.is_some() {
        metrics.counter_add("repair.passes", st.repair.passes);
        metrics.counter_add("repair.recruited", st.repair.recruited);
        metrics.counter_add("repair.bytes_copied", st.repair.bytes_copied);
        metrics.gauge_set("repair.lost_partitions", st.repair.lost_partitions as f64);
        metrics.gauge_set("repair.unfilled_deficits", st.repair.unfilled_deficits as f64);
    }
    // Per-operator attribution under `op.<name>.*` — most notably the
    // per-operator queue time, which used to live only in the typed
    // `per_operator` rows and bypassed the registry.
    for row in &per_operator {
        let p = format!("op.{}", row.operator);
        metrics.counter_add(format!("{p}.queue_us"), row.queue_us);
        metrics.counter_add(format!("{p}.messages"), row.messages);
        metrics.counter_add(format!("{p}.cache_hits"), row.cache_hits);
        metrics.counter_add(format!("{p}.probes_coalesced"), row.probes_coalesced);
        metrics.counter_add(format!("{p}.window_shrinks"), row.window_shrinks);
        if row.window_peak > 0 {
            metrics.gauge_set(format!("{p}.window_peak"), row.window_peak as f64);
        }
    }

    let phase_summary = |(h, s): &(LogHistogram, QueryStats)| PhaseSummary {
        summary: LatencySummary::of_histogram(h),
        completeness: s.completeness(),
        retries: s.retries,
        gave_up: s.gave_up,
    };
    DriverPhase::Done(DriverReport {
        per_operator,
        overall,
        total: st.total,
        cache,
        metrics,
        queries_run: st.queries_run,
        virtual_span_us,
        throughput_qps,
        phases: PhaseReport { early: phase_summary(&st.early), late: phase_summary(&st.late) },
        repair: cfg.repair.map(|_| st.repair),
        diagnostics: std::mem::take(&mut st.diagnostics),
    })
}

/// One self-healing pass after a membership event: charge repair traffic
/// at the event's virtual time, then fold the pass outcome into the run's
/// [`RepairTotals`]. A no-op without a configured policy.
fn run_repair(
    engine: &mut SimilarityEngine,
    cfg: &DriverConfig,
    t: u64,
    totals: &mut RepairTotals,
) {
    let Some(policy) = cfg.repair else { return };
    engine.network_mut().sim_reset_to_us(t);
    let rep = engine.network_mut().repair_epoch(&policy);
    totals.passes += 1;
    totals.recruited += rep.recruited;
    totals.bytes_copied += rep.bytes_copied;
    // Gauges: the state as of the most recent pass, not a sum.
    totals.lost_partitions = rep.lost as u64;
    totals.unfilled_deficits = rep.unfilled as u64;
}

/// Exponential interarrival sample with the given mean (microseconds).
fn exp_sample(rng: &mut StdRng, mean_us: u64) -> u64 {
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let x = -(1.0 - u).max(f64::MIN_POSITIVE).ln() * mean_us as f64;
    x.clamp(0.0, 1e12) as u64
}

/// Construct the resumable task for one query of the mix.
///
/// With [`ApiMode::Plan`] every template becomes a `sqo-plan` [`Query`]
/// prepared against the engine's planner environment — the legacy
/// `QueryKind` dispatch is a thin shim over the unified IR. With
/// [`ApiMode::Legacy`] the per-operator core tasks are constructed
/// directly (the A/B baseline); `Pipeline` templates and VQL go through
/// their own planners in both modes, being expressible only there.
fn build_task(
    env: &PlannerEnv,
    attr: &str,
    s: &str,
    from: sqo_overlay::PeerId,
    kind: &QueryKind,
    strategy: Strategy,
    api: ApiMode,
) -> Box<dyn ExecStep> {
    use sqo_plan::Query;

    if let QueryKind::Vql { d } = kind {
        // The search string lands inside a single-quoted VQL literal;
        // neutralize quotes so a stray apostrophe in the pool cannot
        // turn every Vql query into a silent parse error.
        let s = s.replace('\'', " ");
        let query =
            format!("SELECT ?o WHERE {{ (?o,{attr},?v) FILTER (dist(?v,'{s}') < {}) }}", d + 1);
        let opts = sqo_vql::ExecOptions { strategy };
        return match sqo_vql::VqlTask::prepare(&query, from, &opts) {
            Ok(task) => Box::new(task),
            // A parse/plan error costs nothing on the wire: an
            // immediately-done task with empty stats.
            Err(_) => Box::new(NullTask),
        };
    }

    if api == ApiMode::Legacy {
        return match kind {
            QueryKind::Similar { d } => {
                Box::new(QueryTask::Similar(SimilarTask::new(s, Some(attr), *d, from, strategy)))
            }
            QueryKind::TopN { n, d_max } => Box::new(QueryTask::TopN(TopNTask::nearest(
                Some(attr),
                *n,
                s,
                *d_max,
                from,
                strategy,
            ))),
            QueryKind::SimJoin { d, left_limit, window } => {
                let opts = JoinOptions { strategy, left_limit: *left_limit, window: *window };
                Box::new(QueryTask::Join(JoinTask::new(attr, Some(attr), *d, from, &opts)))
            }
            // Pipelines have no legacy construction; fall through to the
            // plan path below.
            QueryKind::Pipeline { .. } => {
                build_task(env, attr, s, from, kind, strategy, ApiMode::Plan)
            }
            QueryKind::Vql { .. } => unreachable!("handled above"),
        };
    }

    let q = match kind {
        QueryKind::Similar { d } => Query::similar(s, Some(attr), *d),
        QueryKind::TopN { n, d_max } => Query::top_n_similar(Some(attr), *n, s, *d_max),
        QueryKind::SimJoin { d, left_limit, window } => {
            Query::join_scan(attr, Some(attr), *d).left_limit(*left_limit).window_mode(*window)
        }
        QueryKind::Pipeline { d, n, left_limit, window } => {
            // Prefix-range select: every word sharing the drawn string's
            // first two characters feeds the join's left side.
            let prefix: String = s.chars().take(2).collect();
            let hi = format!("{prefix}\u{10FFFF}");
            Query::select_range(attr, Value::from(prefix), Value::from(hi))
                .sim_join(attr, Some(attr), *d)
                .top_n(*n)
                .left_limit(*left_limit)
                .window_mode(*window)
        }
        QueryKind::Vql { .. } => unreachable!("handled above"),
    };
    match PreparedQuery::with_env(&q.strategy(strategy), env, from) {
        Ok(prepared) => Box::new(prepared.task()),
        Err(_) => Box::new(NullTask),
    }
}

/// A task that completes instantly with empty stats (failed query
/// construction).
struct NullTask;

impl ExecStep for NullTask {
    fn step(&mut self, _engine: &mut SimilarityEngine, _at_us: u64) -> StepOutcome {
        StepOutcome::Done(QueryStats::default())
    }
}
