//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] is a script of [`FaultEvent`]s the workload driver
//! replays at their virtual times, interleaved with arrivals and query
//! steps on the same event queue: random crash waves, targeted partition
//! wipes, revivals of previously-dead peers, and transient loss spikes on
//! the installed [`LossModel`](crate::LossModel). Everything is a pure
//! function of the plan and the driver seed — two runs of the same plan
//! produce byte-identical reports, which is what makes fault scenarios
//! regression-testable.
//!
//! Plans compose with the driver's repair hook
//! ([`DriverConfig::repair`](crate::DriverConfig)): after every churn and
//! fault event the driver runs one
//! [`Network::repair_epoch`](sqo_overlay::Network::repair_epoch) pass when
//! a [`ReplicationPolicy`](sqo_overlay::ReplicationPolicy) is configured,
//! so the same script measures both the unrepaired decay and the
//! self-healing response.

use crate::latency::LossModel;
use crate::seed;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    pub at_us: u64,
    pub kind: FaultKind,
}

/// What goes wrong at [`FaultEvent::at_us`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Crash-stop a random fraction of all peers (dead peers keep their
    /// stores — crash, not disk loss).
    Crash { fraction: f64 },
    /// Kill every alive member of one partition — the targeted wipe that
    /// makes a slice of the key space unreachable until a revival or a
    /// repair pass restores coverage.
    WipePartition { part: usize },
    /// Revive a random fraction of the currently-dead peers.
    Revive { fraction: f64 },
    /// Swap the installed loss model for `loss` during `duration_us` of
    /// virtual time, then restore the run's baseline — a transient network
    /// brown-out (retransmission storms, inflated tails) without any peer
    /// dying.
    LossSpike { loss: LossModel, duration_us: u64 },
}

impl FaultKind {
    /// Short label for traces and logs.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Crash { .. } => "crash",
            FaultKind::WipePartition { .. } => "wipe-partition",
            FaultKind::Revive { .. } => "revive",
            FaultKind::LossSpike { .. } => "loss-spike",
        }
    }
}

/// A deterministic fault script. The default (empty) plan injects nothing
/// and leaves the driver's behavior byte-identical to a run without any
/// fault machinery — the zero-fault equivalence the tests pin.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Events in any order; the driver's event queue replays them by
    /// `at_us` (FIFO on ties, in plan order).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A periodic crash/revive cadence over `[0, horizon_us)`: every
    /// `period_us` a crash wave kills `crash_fraction` of the network, and
    /// half a period later a revival brings back `revive_fraction` of the
    /// dead. Event times are jittered by up to a quarter period, seeded
    /// from `seed` via the dedicated fault stream
    /// ([`seed::FAULT_STREAM`]) — deterministic, but not phase-locked to
    /// arrival times.
    pub fn periodic(
        seed_val: u64,
        horizon_us: u64,
        period_us: u64,
        crash_fraction: f64,
        revive_fraction: f64,
    ) -> Self {
        assert!(period_us > 0, "periodic fault plan needs a positive period");
        let mut events = Vec::new();
        let jitter_span = (period_us / 4).max(1);
        let mut k = 0u64;
        loop {
            let base = k * period_us;
            if base >= horizon_us {
                break;
            }
            let mut rng = StdRng::seed_from_u64(seed::derive(seed_val, seed::FAULT_STREAM, k));
            let crash_at = base + rng.gen_range(0..jitter_span);
            events.push(FaultEvent {
                at_us: crash_at,
                kind: FaultKind::Crash { fraction: crash_fraction },
            });
            if revive_fraction > 0.0 {
                let revive_at = base + period_us / 2 + rng.gen_range(0..jitter_span);
                events.push(FaultEvent {
                    at_us: revive_at,
                    kind: FaultKind::Revive { fraction: revive_fraction },
                });
            }
            k += 1;
        }
        Self { events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty() {
        assert!(FaultPlan::default().is_empty());
    }

    #[test]
    fn periodic_plan_is_deterministic_and_jittered() {
        let a = FaultPlan::periodic(7, 1_000_000, 200_000, 0.1, 0.5);
        let b = FaultPlan::periodic(7, 1_000_000, 200_000, 0.1, 0.5);
        assert_eq!(a, b, "same seed must script the same plan");
        let c = FaultPlan::periodic(8, 1_000_000, 200_000, 0.1, 0.5);
        assert_ne!(a, c, "a different seed must move the jitter");
        // 5 periods, crash + revive each.
        assert_eq!(a.events.len(), 10);
        for (i, ev) in a.events.iter().enumerate() {
            let period = (i / 2) as u64;
            assert!(ev.at_us >= period * 200_000 && ev.at_us < (period + 1) * 200_000);
        }
    }

    #[test]
    fn periodic_without_revive_only_crashes() {
        let p = FaultPlan::periodic(1, 400_000, 100_000, 0.2, 0.0);
        assert_eq!(p.events.len(), 4);
        assert!(p.events.iter().all(|e| matches!(e.kind, FaultKind::Crash { .. })));
    }

    #[test]
    fn labels_cover_every_kind() {
        let kinds = [
            FaultKind::Crash { fraction: 0.1 },
            FaultKind::WipePartition { part: 3 },
            FaultKind::Revive { fraction: 0.5 },
            FaultKind::LossSpike { loss: LossModel::default(), duration_us: 1 },
        ];
        let labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels, vec!["crash", "wipe-partition", "revive", "loss-spike"]);
    }
}
