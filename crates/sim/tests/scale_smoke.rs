//! Scale smoke tests for the sharded parallel event core:
//!
//! * a 10⁵-peer overlay snapshot drives a full `ScaleSim` workload inside
//!   the RSS-per-peer and wall-clock budgets,
//! * the sharded windowed core is **bit-identical** to the serial heap
//!   baseline at integration scale and under a property sweep of seeds,
//! * the driver's [`ShardedQueue`](sqo_sim::ShardedQueue) lane count
//!   never changes a [`DriverReport`] — serialized reports are
//!   byte-for-byte equal for every `shards` setting.

use proptest::prelude::*;
use sqo_core::EngineBuilder;
use sqo_datasets::{bible_words, string_rows};
use sqo_overlay::hash::hash_str;
use sqo_overlay::key::Key;
use sqo_overlay::network::{Network, NetworkConfig};
use sqo_overlay::peer::Item;
use sqo_sim::{
    rss_now_bytes, run_driver, run_serial, run_sharded, DriverConfig, ScaleConfig, Topology,
};
use std::sync::OnceLock;

#[derive(Debug, Clone)]
struct W(String);

impl Item for W {
    fn size_bytes(&self) -> usize {
        self.0.len()
    }
}

fn corpus(n: usize) -> Vec<(Key, W)> {
    (0..n).map(|i| (hash_str(&format!("w{i:07}")), W(format!("w{i:07}")))).collect()
}

/// The 10⁵-peer snapshot, built once and shared by the tests below (the
/// build is the expensive part; `Topology` is read-only by design).
fn big_topology() -> &'static (Topology, u64) {
    static TOPO: OnceLock<(Topology, u64)> = OnceLock::new();
    TOPO.get_or_init(|| {
        let peers = 100_000;
        let rss_before = rss_now_bytes().unwrap_or(0);
        let t0 = std::time::Instant::now();
        let net = Network::build(
            NetworkConfig { peers, replication: 3, seed: 7, ..NetworkConfig::default() },
            corpus(100_000),
        );
        let build = t0.elapsed();
        let rss_after = rss_now_bytes().unwrap_or(0);
        let per_peer = rss_after.saturating_sub(rss_before) / peers as u64;
        assert!(build.as_secs() < 180, "10^5-peer build took {build:?}, over the smoke budget");
        let topo = Topology::of_network(&net);
        (topo, per_peer)
    })
}

/// 10⁵ peers: the arena-backed overlay stays inside the RSS budget (the
/// seed held 5 649 B/peer; the issue demands ≥ 3× less) and a full
/// sharded workload completes every query.
#[test]
fn hundred_thousand_peers_fit_and_complete() {
    let (topo, rss_per_peer) = big_topology();
    assert_eq!(topo.peer_count(), 100_000);
    if *rss_per_peer > 0 {
        assert!(
            *rss_per_peer <= 5_649 / 3,
            "overlay RSS {rss_per_peer} B/peer exceeds a third of the 5 649 B/peer seed"
        );
    }

    let cfg = ScaleConfig { queries: 300, arrival_spread_us: 20_000, ..ScaleConfig::default() };
    let (out, run) = run_sharded(topo, &cfg);
    assert_eq!(out.queries_done, 300, "every query completes: {out:?}");
    assert!(out.events > 300, "multi-hop routing produces more events than queries");
    assert_eq!(run.events, out.events);
    assert!(out.max_done_us > 0 && out.checksum != 0);
}

/// At the same 10⁵-peer scale, every shard count and both execution modes
/// reproduce the serial heap baseline bit for bit.
#[test]
fn sharded_is_bit_identical_to_serial_at_scale() {
    let (topo, _) = big_topology();
    let cfg = ScaleConfig { queries: 200, arrival_spread_us: 20_000, ..ScaleConfig::default() };
    let (serial, _) = run_serial(topo, &cfg);
    assert_eq!(serial.queries_done, 200);
    for (shards, threads) in [(1, false), (2, false), (4, false), (4, true)] {
        let c = ScaleConfig { shards, threads, ..cfg };
        let (out, _) = run_sharded(topo, &c);
        assert_eq!(out, serial, "shards={shards} threads={threads} diverged from serial");
    }
}

/// Small-topology fixture for the property sweep.
fn small_topology() -> &'static Topology {
    static TOPO: OnceLock<Topology> = OnceLock::new();
    TOPO.get_or_init(|| {
        let net = Network::build(
            NetworkConfig { peers: 120, replication: 3, seed: 13, ..NetworkConfig::default() },
            corpus(500),
        );
        Topology::of_network(&net)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// For any seed, workload shape and shard count, the windowed core's
    /// outcome equals the serial baseline's — the determinism invariant
    /// the whole measurement methodology rests on.
    #[test]
    fn any_seed_any_shards_matches_serial(
        seed in 0u64..1_000,
        shards in 1usize..6,
        threads in any::<bool>(),
        queries in 8usize..48,
        trim in 0u32..4,
    ) {
        let topo = small_topology();
        let cfg = ScaleConfig {
            queries,
            seed,
            shards,
            threads,
            shower_trim_bits: trim,
            arrival_spread_us: 10_000,
            ..ScaleConfig::default()
        };
        let (serial, _) = run_serial(topo, &cfg);
        let (sharded, _) = run_sharded(topo, &cfg);
        prop_assert_eq!(serial, sharded);
        prop_assert_eq!(serial.queries_done, queries as u64);
    }
}

/// The driver's event queue is sharded into per-client lanes; the global
/// sequence counter makes pop order — and therefore the whole report —
/// independent of the lane count. Serialized reports must be
/// byte-identical for every `shards` setting.
#[test]
fn driver_report_is_byte_identical_for_any_shard_count() {
    let words = bible_words(300, 9);
    let rows = string_rows("word", &words, "w");
    let report_for = |shards: usize| {
        let mut engine = EngineBuilder::new().peers(48).q(2).seed(5).build_with_rows(&rows);
        let cfg =
            DriverConfig { clients: 4, queries_per_client: 3, shards, ..DriverConfig::default() };
        let report = run_driver(&mut engine, "word", &words, &cfg);
        serde_json::to_string(&report).expect("serialize report")
    };
    let baseline = report_for(1);
    for shards in [2, 3, 8, 64] {
        assert_eq!(report_for(shards), baseline, "DriverReport changed under shards={shards}");
    }
}
