//! Acceptance tests for step-interleaved execution: arrival-order
//! symmetry (early queries see later arrivals and vice versa), pipelined
//! joins (bounded outstanding-request window), deterministic interleaving,
//! and load-aware reference selection.

use sqo_core::{EngineBuilder, JoinOptions, JoinWindow, SimilarityEngine};
use sqo_datasets::{bible_words, string_rows};
use sqo_sim::{
    install, run_driver, Arrival, DriverConfig, DriverReport, LatencyModel, QueryKind, SimConfig,
};

fn engine(words: &[String], peers: usize, replication: usize) -> SimilarityEngine {
    let rows = string_rows("word", words, "w");
    EngineBuilder::new().peers(peers).replication(replication).q(2).seed(5).build_with_rows(&rows)
}

fn reports_equal(a: &DriverReport, b: &DriverReport) -> bool {
    a.queries_run == b.queries_run
        && a.virtual_span_us == b.virtual_span_us
        && a.overall == b.overall
        && a.per_operator == b.per_operator
        && a.total.traffic == b.total.traffic
        && a.total.sim == b.total.sim
}

fn sim_cfg() -> SimConfig {
    SimConfig { latency: LatencyModel::Constant { us: 1_000 }, ..SimConfig::default() }
}

/// The symmetry the refactor exists for: a long query that arrives *first*
/// must still feel the contention of queries that arrive *while it is in
/// flight*. Under the old atomic-execution driver this was impossible —
/// earlier-simulated queries never saw later arrivals. Here, client 0's
/// join (arrival t=0) gets strictly slower when clients 1–3 start similar
/// queries mid-join, even though every disruptor arrives after it.
#[test]
fn early_query_sees_later_arrivals() {
    let words = bible_words(500, 11);
    let run = |clients: usize| {
        let mut e = engine(&words, 48, 1);
        let cfg = DriverConfig {
            clients,
            queries_per_client: 1,
            // Client 0 at t=0; disruptors stagger in shortly after, well
            // inside the join's multi-hundred-ms window.
            arrival: Arrival::Explicit { offsets_us: vec![0, 3_000, 6_000, 9_000] },
            // kind index is (issued + client) % len: client 0 runs the
            // join, clients 1..4 run similar queries.
            mix: vec![
                QueryKind::SimJoin { d: 1, left_limit: Some(8), window: JoinWindow::Fixed(1) },
                QueryKind::Similar { d: 1 },
                QueryKind::Similar { d: 1 },
                QueryKind::Similar { d: 1 },
            ],
            sim: sim_cfg(),
            ..DriverConfig::default()
        };
        run_driver(&mut e, "word", &words, &cfg)
    };
    let alone = run(1);
    let contended = run(4);
    let join_of = |r: &DriverReport| {
        r.per_operator.iter().find(|o| o.operator == "simjoin").expect("join ran").summary
    };
    let (a, c) = (join_of(&alone), join_of(&contended));
    assert_eq!(a.count, 1);
    assert_eq!(c.count, 1);
    assert!(
        c.p50_us > a.p50_us,
        "the t=0 join must queue behind later arrivals: alone {} vs contended {}",
        a.p50_us,
        c.p50_us
    );
}

/// The ISSUE's literal property: permuting which client gets which arrival
/// offset must not change which queries contend. With a single-string pool
/// and a single-kind mix, queries are distinguished only by their arrival
/// times — so any permutation of the offset assignment yields a
/// byte-identical report.
#[test]
fn permuting_arrival_offsets_preserves_the_report() {
    let words = bible_words(400, 13);
    let pool = vec![words[17].clone()]; // one query string for everyone
    let run = |offsets: Vec<u64>| {
        let mut e = engine(&words, 48, 1);
        let cfg = DriverConfig {
            clients: 4,
            queries_per_client: 1,
            arrival: Arrival::Explicit { offsets_us: offsets },
            mix: vec![QueryKind::Similar { d: 1 }],
            sim: sim_cfg(),
            ..DriverConfig::default()
        };
        run_driver(&mut e, "word", &pool, &cfg)
    };
    let a = run(vec![0, 2_000, 4_000, 6_000]);
    let b = run(vec![6_000, 0, 4_000, 2_000]);
    let c = run(vec![4_000, 6_000, 2_000, 0]);
    assert!(reports_equal(&a, &b), "offset permutation changed the report");
    assert!(reports_equal(&a, &c), "offset permutation changed the report");
    assert_eq!(a.queries_run, 4);
    assert!(a.overall.p50_us > 0, "simulated queries take time");
}

/// The pipelined-join window: identical pairs for every window, and a
/// strict critical-path (p50) reduction once selections overlap.
#[test]
fn join_window_reduces_p50_without_changing_pairs() {
    let words = bible_words(500, 11);
    // Result equality, directly on the engine with a sink installed.
    let join = |window: JoinWindow| {
        let mut e = engine(&words, 48, 1);
        install(&mut e, sim_cfg());
        let from = e.random_peer();
        let opts = JoinOptions { left_limit: Some(8), window, ..Default::default() };
        let res = e.sim_join("word", Some("word"), 1, from, &opts);
        let mut pairs: Vec<(String, String)> =
            res.pairs.iter().map(|p| (p.left_value.clone(), p.right.matched.clone())).collect();
        pairs.sort_unstable();
        (pairs, res.stats.sim.expect("sink installed"))
    };
    let (pairs1, sim1) = join(JoinWindow::Fixed(1));
    let (pairs8, sim8) = join(JoinWindow::Fixed(8));
    assert_eq!(pairs1, pairs8, "the window must never change join results");
    assert!(!pairs1.is_empty(), "self-join must produce pairs");
    assert!(
        sim8.elapsed_us < sim1.elapsed_us,
        "window=8 must overlap selections: {} vs {}",
        sim8.elapsed_us,
        sim1.elapsed_us
    );

    // And through the driver: p50 over several joins drops strictly.
    let drive = |window: JoinWindow| {
        let mut e = engine(&words, 48, 1);
        let cfg = DriverConfig {
            clients: 1,
            queries_per_client: 4,
            arrival: Arrival::Closed { think_us: 1_000 },
            mix: vec![QueryKind::SimJoin { d: 1, left_limit: Some(8), window }],
            sim: sim_cfg(),
            ..DriverConfig::default()
        };
        let report = run_driver(&mut e, "word", &words, &cfg);
        report.per_operator.iter().find(|o| o.operator == "simjoin").expect("joins ran").summary
    };
    let serial = drive(JoinWindow::Fixed(1));
    let pipelined = drive(JoinWindow::Fixed(8));
    assert_eq!(serial.count, 4);
    assert_eq!(pipelined.count, 4);
    assert!(
        pipelined.p50_us < serial.p50_us,
        "join window=8 must cut p50: {} vs {}",
        pipelined.p50_us,
        serial.p50_us
    );
}

/// Interleaved execution stays a pure function of its inputs: two runs
/// with in-flight overlap, windowed joins and explicit offsets produce
/// byte-identical reports.
#[test]
fn interleaved_execution_is_deterministic() {
    let words = bible_words(400, 19);
    let run = || {
        let mut e = engine(&words, 64, 2);
        let cfg = DriverConfig {
            clients: 6,
            queries_per_client: 2,
            arrival: Arrival::Explicit { offsets_us: vec![0, 1_500, 3_000, 4_500, 6_000, 7_500] },
            mix: vec![
                QueryKind::Similar { d: 1 },
                QueryKind::SimJoin { d: 1, left_limit: Some(6), window: JoinWindow::Fixed(4) },
                QueryKind::TopN { n: 5, d_max: 3 },
                QueryKind::Vql { d: 1 },
            ],
            sim: SimConfig {
                latency: LatencyModel::LogNormal { median_us: 1_200.0, sigma: 0.7 },
                ..SimConfig::default()
            },
            ..DriverConfig::default()
        };
        run_driver(&mut e, "word", &words, &cfg)
    };
    let a = run();
    let b = run();
    assert!(reports_equal(&a, &b), "interleaved runs must be byte-identical");
    assert_eq!(a.queries_run, 12);
    assert!(a.overall.p50_us > 0);
}

/// Load-aware reference selection (prefer the replica with the shortest
/// service backlog) must not change any answer, and under a contended
/// workload with structural replicas it reduces total queue time against
/// the uniform-random A/B baseline.
#[test]
fn load_aware_selection_flattens_queueing_without_changing_answers() {
    let words = bible_words(500, 23);
    let run = |uniform: bool| {
        let rows = string_rows("word", &words, "w");
        let mut e = EngineBuilder::new()
            .peers(64)
            .replication(4)
            .q(2)
            .seed(9)
            .uniform_refs(uniform)
            .build_with_rows(&rows);
        let cfg = DriverConfig {
            clients: 12,
            queries_per_client: 3,
            arrival: Arrival::Poisson { mean_interarrival_us: 2_000 },
            mix: vec![QueryKind::Similar { d: 1 }, QueryKind::TopN { n: 5, d_max: 3 }],
            sim: sim_cfg(),
            ..DriverConfig::default()
        };
        run_driver(&mut e, "word", &words, &cfg)
    };
    let uniform = run(true);
    let loaded = run(false);
    assert_eq!(uniform.queries_run, loaded.queries_run);
    assert_eq!(
        uniform.total.matches, loaded.total.matches,
        "replica choice must never change answers"
    );
    let uq = uniform.total.sim.unwrap().queue_us;
    let lq = loaded.total.sim.unwrap().queue_us;
    assert!(
        lq < uq,
        "shortest-backlog selection should shed queueing: load-aware {lq} vs uniform {uq}"
    );
}
