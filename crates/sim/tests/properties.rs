//! Property tests for the discrete-event core: clock monotonicity, FIFO
//! tie-breaking, and the fork/join critical-path algebra of `NetSim`.

use proptest::prelude::*;
use sqo_overlay::clock::{EventSink, MsgKind};
use sqo_overlay::PeerId;
use sqo_sim::{EventQueue, LatencyModel, NetSim, SimConfig};

proptest! {
    /// Pops come out sorted by time, and equal-time events keep insertion
    /// order; the clock never moves backwards.
    #[test]
    fn event_queue_is_monotone_and_stable(
        times in prop::collection::vec(0u64..1_000, 1..120),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut last_t = 0u64;
        let mut seen_at: Vec<(u64, usize)> = Vec::new();
        while let Some((t, id)) = q.pop() {
            prop_assert!(t >= last_t, "clock ran backwards: {t} < {last_t}");
            prop_assert_eq!(t, q.now_us());
            last_t = t;
            seen_at.push((t, id));
        }
        prop_assert_eq!(seen_at.len(), times.len());
        // FIFO among ties: ids with equal timestamps appear in push order.
        for w in seen_at.windows(2) {
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "tie broke FIFO: {:?}", w);
            }
        }
        // Every event popped at its scheduled time.
        for (t, id) in &seen_at {
            prop_assert_eq!(*t, times[*id]);
        }
    }

    /// A query made of sequential hops plus one balanced fan-out always
    /// satisfies the critical-path algebra: `elapsed == end - start`,
    /// `elapsed` is at least the longest branch but at most the sum of all
    /// message spans, and the per-category sums account for every message.
    #[test]
    fn netsim_fork_join_critical_path(
        pre_hops in 0usize..4,
        branch_hops in prop::collection::vec(1usize..5, 1..6),
        latency_us in 1u64..10_000,
        seed in 0u64..50,
    ) {
        let peers = 16u32;
        let cfg = SimConfig {
            latency: LatencyModel::Constant { us: latency_us },
            service_us_per_msg: 7,
            service_us_per_kib: 0,
            scan_us_per_item: 0,
            seed,
            ..SimConfig::default()
        };
        let mut s = NetSim::new(cfg, peers as usize);
        s.begin_query();
        let mut peer = 0u32;
        let mut next_peer = || { peer = (peer + 1) % peers; PeerId(peer) };
        for _ in 0..pre_hops {
            s.deliver(PeerId(0), next_peer(), 48, MsgKind::Route);
        }
        s.fork();
        for hops in &branch_hops {
            s.branch();
            for _ in 0..*hops {
                s.deliver(PeerId(1), next_peer(), 48, MsgKind::Forward);
            }
        }
        s.join();
        let lat = s.end_query();

        let per_msg = latency_us + 7;
        let total_msgs = pre_hops + branch_hops.iter().sum::<usize>();
        prop_assert_eq!(lat.timed_messages as usize, total_msgs);
        prop_assert_eq!(lat.elapsed_us, lat.end_us - lat.start_us);
        // Longest branch bounds from below; serialized sum from above.
        // (Distinct receivers per hop and no cross-branch peer sharing in
        // this construction would make the bound exact, but the rotating
        // peer assignment can collide, so only the inequalities are stable.)
        let longest = *branch_hops.iter().max().unwrap() as u64;
        prop_assert!(lat.elapsed_us >= (pre_hops as u64 + longest) * per_msg);
        prop_assert!(lat.elapsed_us <= total_msgs as u64 * per_msg + lat.queue_us);
        prop_assert_eq!(lat.net_us, total_msgs as u64 * latency_us);
        prop_assert_eq!(lat.service_us, total_msgs as u64 * 7);
    }

    /// Identical NetSim runs produce identical profiles; different seeds
    /// may differ (jitter), same seeds may not.
    #[test]
    fn netsim_is_deterministic(seed in 0u64..1_000) {
        let run = || {
            let cfg = SimConfig {
                latency: LatencyModel::Uniform { min_us: 100, max_us: 5_000 },
                seed,
                ..SimConfig::default()
            };
            let mut s = NetSim::new(cfg, 8);
            s.begin_query();
            for i in 0..20u32 {
                s.deliver(PeerId(i % 8), PeerId((i + 3) % 8), 100, MsgKind::Route);
            }
            s.end_query()
        };
        prop_assert_eq!(run(), run());
    }
}
