//! Observability acceptance: trace exports are deterministic for seeded
//! runs, valid JSON, carry the per-peer / per-query track structure — and
//! tracing is **zero-cost for results**: the driver report of a traced run
//! is byte-identical to the untraced one.

use sqo_core::{BrokerConfig, EngineBuilder, JoinWindow, SimilarityEngine};
use sqo_datasets::{bible_words, string_rows};
use sqo_obs::{validate_json, BlameProfiler, FanoutSink, SloMonitor, SloSpec, TraceCollector};
use sqo_sim::{
    run_driver, Arrival, DriverConfig, DriverReport, LatencyModel, QueryKind, SimConfig,
};

fn engine(words: &[String]) -> SimilarityEngine {
    let rows = string_rows("word", words, "w");
    EngineBuilder::new().peers(32).q(2).seed(11).build_with_rows(&rows)
}

fn cfg() -> DriverConfig {
    DriverConfig {
        clients: 3,
        queries_per_client: 4,
        arrival: Arrival::Poisson { mean_interarrival_us: 4_000 },
        mix: vec![
            QueryKind::Similar { d: 1 },
            QueryKind::SimJoin { d: 1, left_limit: Some(4), window: sqo_core::JoinWindow::auto() },
            QueryKind::TopN { n: 3, d_max: 2 },
        ],
        sim: SimConfig {
            latency: LatencyModel::Uniform { min_us: 300, max_us: 2_500 },
            ..SimConfig::default()
        },
        cache: BrokerConfig::enabled(),
        seed: 41,
        ..DriverConfig::default()
    }
}

/// One traced run: the report plus both export renderings.
fn traced_run(words: &[String]) -> (DriverReport, String, String) {
    let mut engine = engine(words);
    let collector = TraceCollector::shared();
    engine.network_mut().set_trace_sink(TraceCollector::as_sink(&collector));
    let report = run_driver(&mut engine, "word", words, &cfg());
    let c = collector.borrow();
    (report, c.to_jsonl(), c.to_chrome_trace())
}

#[test]
fn trace_exports_are_deterministic_and_valid() {
    let words = bible_words(250, 5);
    let (_, jsonl_a, chrome_a) = traced_run(&words);
    let (_, jsonl_b, chrome_b) = traced_run(&words);
    assert_eq!(jsonl_a, jsonl_b, "JSONL export must be byte-identical across seeded runs");
    assert_eq!(chrome_a, chrome_b, "Chrome export must be byte-identical across seeded runs");

    assert!(!jsonl_a.is_empty());
    for line in jsonl_a.lines() {
        validate_json(line).unwrap_or_else(|e| panic!("invalid JSONL line {line}: {e}"));
    }
    validate_json(&chrome_a).expect("Chrome trace_event export must be valid JSON");

    // Track structure: per-peer occupancy tracks and per-query spans.
    assert!(chrome_a.contains("\"thread_name\""), "thread metadata present");
    assert!(chrome_a.contains("\"name\":\"peer "), "per-peer tracks present");
    assert!(chrome_a.contains("\"name\":\"query "), "per-query tracks present");
    assert!(jsonl_a.contains("\"cat\":\"query\""), "per-query spans present");
    assert!(jsonl_a.contains("\"cat\":\"net\""), "per-peer service spans present");
    assert!(jsonl_a.contains("\"cat\":\"exec\""), "charged-step spans present");
}

#[test]
fn tracing_leaves_the_driver_report_byte_identical() {
    let words = bible_words(250, 5);
    let (traced, _, _) = traced_run(&words);
    let mut plain_engine = engine(&words);
    let plain = run_driver(&mut plain_engine, "word", &words, &cfg());
    assert_eq!(
        serde_json::to_string(&traced).unwrap(),
        serde_json::to_string(&plain).unwrap(),
        "a trace sink must not perturb results, stats, or metrics"
    );
}

/// A mix covering every operator kind the driver can issue.
fn all_operators_cfg(clients: usize) -> DriverConfig {
    DriverConfig {
        clients,
        queries_per_client: 5,
        arrival: Arrival::Poisson { mean_interarrival_us: 4_000 },
        mix: vec![
            QueryKind::Similar { d: 1 },
            QueryKind::SimJoin { d: 1, left_limit: Some(4), window: JoinWindow::auto() },
            QueryKind::TopN { n: 3, d_max: 2 },
            QueryKind::Vql { d: 1 },
            QueryKind::Pipeline { d: 1, n: 3, left_limit: Some(4), window: JoinWindow::auto() },
        ],
        sim: SimConfig {
            latency: LatencyModel::Uniform { min_us: 300, max_us: 2_500 },
            ..SimConfig::default()
        },
        cache: BrokerConfig::enabled(),
        seed: 41,
        ..DriverConfig::default()
    }
}

/// The acceptance pin: for **every operator**, at 1 and at 16 clients,
/// the blame tree accounts for 100% of each query's measured critical
/// path — `net + queue + service + stall == elapsed`, exactly, per query.
#[test]
fn blame_tree_accounts_for_the_full_critical_path() {
    let words = bible_words(250, 5);
    for clients in [1usize, 16] {
        let mut e = engine(&words);
        let profiler = BlameProfiler::shared(2);
        e.network_mut().set_trace_sink(BlameProfiler::as_sink(&profiler));
        let report = run_driver(&mut e, "word", &words, &all_operators_cfg(clients));
        let p = profiler.borrow();
        assert_eq!(p.queries().len(), report.queries_run, "every query profiled");
        for q in p.queries() {
            let sum = q.net_us + q.queue_us + q.service_us + q.stall_us;
            assert_eq!(
                sum, q.elapsed_us,
                "clients={clients} qid={} op={}: blame parts {sum} != elapsed {}",
                q.qid, q.operator, q.elapsed_us
            );
        }
        let ops: Vec<&str> = p.per_operator().map(|o| o.operator.as_str()).collect();
        for op in ["similar", "simjoin", "topn", "vql", "pipeline"] {
            assert!(ops.contains(&op), "clients={clients}: operator {op} missing from {ops:?}");
        }
        // The decomposition is meaningful, not degenerate: network time
        // dominates somewhere, and at 16 clients receivers queue.
        let total_net: u64 = p.queries().iter().map(|q| q.net_us).sum();
        assert!(total_net > 0, "clients={clients}: link latency must be blamed");
        if clients == 16 {
            let total_queue: u64 = p.queries().iter().map(|q| q.queue_us).sum();
            assert!(total_queue > 0, "16 contending clients must produce queue blame");
        }
        assert!(!p.render().is_empty());
    }
}

/// Zero-overhead pin for the new sinks: a run with a blame profiler AND
/// an SLO monitor attached produces a byte-identical driver report.
#[test]
fn blame_and_slo_sinks_leave_the_driver_report_byte_identical() {
    let words = bible_words(250, 5);
    let mut plain_engine = engine(&words);
    let plain = run_driver(&mut plain_engine, "word", &words, &cfg());

    let mut e = engine(&words);
    let profiler = BlameProfiler::shared(3);
    let monitor = SloMonitor::shared(
        vec![SloSpec::operator("similar").p99_max_us(50_000).min_hit_rate(0.01)],
        100_000,
    );
    let fan =
        FanoutSink::shared(vec![BlameProfiler::as_sink(&profiler), SloMonitor::as_sink(&monitor)]);
    e.network_mut().set_trace_sink(fan);
    let observed = run_driver(&mut e, "word", &words, &cfg());
    assert_eq!(
        serde_json::to_string(&observed).unwrap(),
        serde_json::to_string(&plain).unwrap(),
        "blame profiling and SLO monitoring must not perturb the report"
    );
    assert!(!profiler.borrow().queries().is_empty(), "the profiler saw the workload");
    assert!(monitor.borrow().report().verdicts.iter().any(|v| v.evaluated > 0));
}

/// The SLO watchdog flags an impossible latency budget and emits burn
/// instants into its inner sink on the ok→violating edge.
#[test]
fn slo_monitor_flags_violations_and_emits_burns() {
    let words = bible_words(250, 5);
    let mut e = engine(&words);
    let collector = TraceCollector::shared();
    let monitor = std::rc::Rc::new(std::cell::RefCell::new(
        SloMonitor::new(
            vec![
                SloSpec::operator("similar").p99_max_us(1), // unmeetable
                SloSpec::operator("topn").p99_max_us(60_000_000), // unmissable
            ],
            100_000,
        )
        .with_inner(TraceCollector::as_sink(&collector)),
    ));
    e.network_mut().set_trace_sink(SloMonitor::as_sink(&monitor));
    let _ = run_driver(&mut e, "word", &words, &cfg());
    let m = monitor.borrow();
    assert!(m.burns() > 0, "an unmeetable p99 budget must burn");
    let report = m.report();
    let sim = report.verdicts.iter().find(|v| v.spec.operator == "similar").expect("similar");
    assert!(!sim.ok, "1us p99 budget must be violated");
    let topn = report.verdicts.iter().find(|v| v.spec.operator == "topn").expect("topn");
    assert!(topn.ok, "lavish budget must pass: {topn:?}");
    assert!(report.render().contains("[FAIL]") && report.render().contains("[PASS]"));
    // Burn instants were forwarded into the inner collector on the
    // control track, alongside the events the monitor passed through.
    let c = collector.borrow();
    assert!(c.events().iter().any(|ev| ev.name == "slo_burn"), "burn instants recorded");
    assert!(c.events().iter().any(|ev| ev.cat == "query"), "stream forwarded to inner sink");
}

#[test]
fn registry_reflects_the_workload() {
    let words = bible_words(250, 5);
    let mut e = engine(&words);
    let report = run_driver(&mut e, "word", &words, &cfg());
    let m = &report.metrics;
    assert_eq!(m.counter("run.queries") as usize, report.queries_run);
    assert_eq!(m.counter("traffic.messages"), report.total.traffic.messages);
    let h = m.histogram("latency.query_us").expect("query latency histogram");
    assert_eq!(h.count() as usize, report.queries_run);
    assert_eq!(
        m.gauge("run.throughput_qps"),
        Some(report.throughput_qps),
        "gauges mirror the report fields"
    );
    // Cache-on workload: the broker's lifetime counters land under cache.*.
    assert!(m.counter("cache.hits") + m.counter("cache.misses") > 0);
    // Per-operator latency histograms exist for every mixed-in operator.
    for op in &report.per_operator {
        let name = format!("latency.{}_us", op.operator);
        let oh = m.histogram(&name).unwrap_or_else(|| panic!("missing {name}"));
        assert_eq!(oh.count() as usize, op.summary.count);
    }
    // The registry's JSON rendering is valid JSON.
    sqo_obs::validate_json(&m.to_json()).expect("registry JSON");
}

#[test]
fn flame_view_renders_per_query() {
    let words = bible_words(200, 5);
    let mut e = engine(&words);
    let collector = TraceCollector::shared();
    e.network_mut().set_trace_sink(TraceCollector::as_sink(&collector));
    let _ = run_driver(&mut e, "word", &words, &cfg());
    let c = collector.borrow();
    let qids = c.query_ids();
    assert!(!qids.is_empty(), "driver attributes trace queries");
    let flame = c.flame(qids[0]);
    assert!(flame.contains("query"), "flame view roots at the query span:\n{flame}");
}
