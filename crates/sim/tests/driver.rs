//! Integration tests for the concurrent-workload driver: determinism,
//! latency-model coverage, contention, and churn termination.

use sqo_core::EngineBuilder;
use sqo_datasets::{bible_words, string_rows};
use sqo_sim::{
    run_driver, Arrival, ChurnEvent, DriverConfig, DriverReport, LatencyModel, QueryKind, SimConfig,
};

fn engine(words: &[String], peers: usize, replication: usize) -> sqo_core::SimilarityEngine {
    let rows = string_rows("word", words, "w");
    EngineBuilder::new().peers(peers).replication(replication).q(2).seed(5).build_with_rows(&rows)
}

fn reports_equal(a: &DriverReport, b: &DriverReport) -> bool {
    a.queries_run == b.queries_run
        && a.virtual_span_us == b.virtual_span_us
        && a.overall == b.overall
        && a.per_operator == b.per_operator
        && a.total.traffic == b.total.traffic
        && a.total.sim == b.total.sim
}

/// Two runs with identical inputs produce byte-identical latency reports —
/// the fixed-seed determinism the whole measurement methodology rests on.
#[test]
fn driver_is_deterministic_per_seed() {
    let words = bible_words(400, 11);
    for model in [
        LatencyModel::Constant { us: 800 },
        LatencyModel::Uniform { min_us: 200, max_us: 3_000 },
        LatencyModel::LogNormal { median_us: 1_500.0, sigma: 0.8 },
        LatencyModel::PerLink { min_us: 300, max_us: 9_000, salt: 4 },
    ] {
        let run = || {
            let mut e = engine(&words, 48, 1);
            let cfg = DriverConfig {
                clients: 3,
                queries_per_client: 3,
                sim: SimConfig { latency: model, ..SimConfig::default() },
                ..DriverConfig::default()
            };
            run_driver(&mut e, "word", &words, &cfg)
        };
        let (a, b) = (run(), run());
        assert!(reports_equal(&a, &b), "nondeterministic report under {model:?}: {a:?} vs {b:?}");
        assert_eq!(a.queries_run, 9);
        assert!(a.overall.p99_us >= a.overall.p50_us);
        assert!(a.overall.p50_us > 0, "simulated queries must take time");
        assert!(a.throughput_qps > 0.0);
    }
}

/// Changing only the seed changes the trace (sanity check that the
/// determinism test is not comparing constants).
#[test]
fn different_seeds_differ() {
    let words = bible_words(400, 11);
    let run = |seed: u64| {
        let mut e = engine(&words, 48, 1);
        let cfg = DriverConfig {
            seed,
            sim: SimConfig {
                latency: LatencyModel::Uniform { min_us: 100, max_us: 10_000 },
                ..SimConfig::default()
            },
            ..DriverConfig::default()
        };
        run_driver(&mut e, "word", &words, &cfg)
    };
    let a = run(1);
    let b = run(2);
    assert!(!reports_equal(&a, &b), "seeds 1 and 2 produced identical reports");
}

/// The VQL operator path reports simulated latency too.
#[test]
fn vql_queries_are_timed() {
    let words = bible_words(300, 13);
    let mut e = engine(&words, 32, 1);
    let cfg = DriverConfig {
        clients: 2,
        queries_per_client: 4,
        mix: vec![QueryKind::Vql { d: 1 }],
        ..DriverConfig::default()
    };
    let report = run_driver(&mut e, "word", &words, &cfg);
    assert_eq!(report.queries_run, 8);
    assert_eq!(report.per_operator.len(), 1);
    assert_eq!(report.per_operator[0].operator, "vql");
    assert!(report.per_operator[0].summary.p50_us > 0);
}

/// Peers dying mid-workload: every query still terminates (the run
/// completes), the report stays deterministic, and the failure shows up in
/// the traffic accounting rather than as a hang or panic.
#[test]
fn churn_mid_workload_terminates_deterministically() {
    let words = bible_words(500, 17);
    let run = || {
        // Replication 3 keeps most data reachable; refs_per_level default.
        let rows = string_rows("word", &words, "w");
        let mut e =
            EngineBuilder::new().peers(64).replication(3).q(2).seed(6).build_with_rows(&rows);
        let cfg = DriverConfig {
            clients: 5,
            queries_per_client: 4,
            arrival: Arrival::Poisson { mean_interarrival_us: 5_000 },
            churn: vec![ChurnEvent::kill(8_000, 0.15), ChurnEvent::kill(20_000, 0.15)],
            ..DriverConfig::default()
        };
        run_driver(&mut e, "word", &words, &cfg)
    };
    let a = run();
    let b = run();
    assert!(reports_equal(&a, &b), "churn runs must stay deterministic");
    assert_eq!(a.queries_run, 20, "every query must terminate under churn");
    assert!(a.overall.max_us < 60_000_000, "no runaway virtual time");
}
