//! Pinned properties of the AIMD join window (`JoinWindow::Auto`):
//!
//! * on an **idle single-client** run the window only ever grows (the
//!   controller ramps to fill idle capacity and never backs off),
//! * under **16-client contention** the controller observes queue time
//!   and performs multiplicative back-offs,
//! * the window **never exceeds the configured ceiling**,
//! * and adaptivity never changes join *results* — only their timing.
//!
//! These are properties of the controller dynamics, not latency
//! snapshots: they hold for any latency model the simulator runs.

use sqo_core::{EngineBuilder, JoinOptions, JoinTask, JoinWindow, SimilarityEngine, Strategy};
use sqo_datasets::{bible_words, string_rows};
use sqo_sim::{install, run_driver, Arrival, DriverConfig, LatencyModel, QueryKind, SimConfig};

fn engine(words: &[String], peers: usize, seed: u64) -> SimilarityEngine {
    let rows = string_rows("word", words, "w");
    EngineBuilder::new().peers(peers).q(2).seed(seed).build_with_rows(&rows)
}

fn sim_cfg() -> SimConfig {
    SimConfig { latency: LatencyModel::Constant { us: 1_000 }, ..SimConfig::default() }
}

/// Drive one auto-window join to completion on an otherwise idle network
/// and return (window trace, stats).
fn idle_join(max: usize, left_limit: usize) -> (Vec<usize>, sqo_core::QueryStats) {
    let words = bible_words(500, 11);
    let mut e = engine(&words, 48, 1);
    install(&mut e, sim_cfg());
    let from = e.random_peer();
    let opts = JoinOptions {
        strategy: Strategy::QGrams,
        left_limit: Some(left_limit),
        window: JoinWindow::Auto { max },
    };
    let mut task = JoinTask::new("word", Some("word"), 1, from, &opts);
    let stats = e.run_task(&mut task);
    let trace = task.window_trace().expect("auto window has a trace").to_vec();
    (trace, stats)
}

#[test]
fn idle_run_grows_monotonically_and_never_shrinks() {
    let (trace, stats) = idle_join(16, 12);
    assert!(
        trace.windows(2).all(|w| w[1] >= w[0]),
        "idle trace must be monotone nondecreasing: {trace:?}"
    );
    assert!(
        *trace.last().expect("non-empty") > 1,
        "an idle network must let the window grow past the serial loop: {trace:?}"
    );
    assert_eq!(stats.join_window_shrinks, 0, "no congestion, no back-off");
    assert_eq!(
        stats.join_window_peak,
        *trace.iter().max().expect("non-empty"),
        "stats peak mirrors the trace"
    );
}

#[test]
fn window_never_exceeds_the_ceiling() {
    for max in [2, 4, 8] {
        let (trace, stats) = idle_join(max, 16);
        assert!(trace.iter().all(|&w| w <= max), "ceiling {max} violated by trace {trace:?}");
        assert!(stats.join_window_peak <= max);
    }
}

#[test]
fn contention_forces_multiplicative_backoff() {
    let words = bible_words(600, 11);
    let mut e = engine(&words, 48, 2);
    let max = 4;
    let cfg = DriverConfig {
        clients: 16,
        queries_per_client: 3,
        // Tight open-loop arrivals: joins overlap heavily and queue
        // behind each other's probe traffic. The left side runs well past
        // the ceiling, so the window still governs spawning long after
        // slow start — the regime where congested completions must be
        // able to throttle the join.
        arrival: Arrival::Poisson { mean_interarrival_us: 2_000 },
        mix: vec![QueryKind::SimJoin {
            d: 1,
            left_limit: Some(24),
            window: JoinWindow::Auto { max },
        }],
        sim: sim_cfg(),
        ..DriverConfig::default()
    };
    let report = run_driver(&mut e, "word", &words, &cfg);
    assert_eq!(report.queries_run, 48);
    assert!(
        report.total.join_window_shrinks > 0,
        "16 overlapping clients must trigger at least one back-off \
         (peak {}, shrinks {})",
        report.total.join_window_peak,
        report.total.join_window_shrinks
    );
    assert!(report.total.join_window_peak <= max, "ceiling holds under contention");
}

#[test]
fn adaptivity_never_changes_join_results() {
    let words = bible_words(400, 11);
    let pairs_with = |window: JoinWindow| {
        let mut e = engine(&words, 48, 3);
        install(&mut e, sim_cfg());
        let from = e.random_peer();
        let opts = JoinOptions { strategy: Strategy::QGrams, left_limit: Some(10), window };
        let res = e.sim_join("word", Some("word"), 1, from, &opts);
        let mut pairs: Vec<(String, String, String)> = res
            .pairs
            .iter()
            .map(|p| (p.left_oid.clone(), p.left_value.clone(), p.right.matched.clone()))
            .collect();
        pairs.sort_unstable();
        pairs
    };
    let fixed = pairs_with(JoinWindow::Fixed(1));
    let auto = pairs_with(JoinWindow::auto());
    assert!(!fixed.is_empty(), "self-join must produce pairs");
    assert_eq!(fixed, auto, "the window mode must never change join results");
}

#[test]
fn fixed_windows_report_no_adaptive_stats() {
    let words = bible_words(300, 11);
    let mut e = engine(&words, 32, 4);
    install(&mut e, sim_cfg());
    let from = e.random_peer();
    let opts = JoinOptions {
        strategy: Strategy::QGrams,
        left_limit: Some(6),
        window: JoinWindow::Fixed(4),
    };
    let mut task = JoinTask::new("word", Some("word"), 1, from, &opts);
    let stats = e.run_task(&mut task);
    assert!(task.window_trace().is_none(), "fixed windows have no trace");
    assert_eq!(stats.join_window_peak, 0);
    assert_eq!(stats.join_window_shrinks, 0);
}
