//! The broker exactness contract, as a property: every operator returns
//! **identical results** with the cache/batcher enabled vs disabled —
//! across replication factors, both probe strategies, and a churn schedule
//! (the churn epoch invalidates the cache, so stale replicas are never
//! served across a membership change).
//!
//! Churn is injected with explicit victims (`fail_peer`), not
//! `fail_random_fraction`: the two engines' RNG streams legitimately
//! diverge (cache hits skip routing draws), so only an externally chosen
//! victim set hits both engines identically. Queries run synchronously to
//! completion between churn steps — a batch window never spans a membership
//! change here, which is exactly the regime the epoch rule makes exact.

use proptest::prelude::*;
use sqo_core::{
    BrokerConfig, EngineBuilder, JoinOptions, JoinWindow, Rank, SimilarityEngine, Strategy,
};
use sqo_datasets::{bible_words, string_rows};
use sqo_overlay::PeerId;
use sqo_sim::{install, SimConfig};
use sqo_storage::triple::Value;

fn build(words: &[String], replication: usize, seed: u64, cache: BrokerConfig) -> SimilarityEngine {
    let rows = string_rows("word", words, "w");
    let mut e = EngineBuilder::new()
        .peers(48)
        .replication(replication)
        .refs_per_level(3)
        .q(2)
        .seed(seed)
        .cache_config(cache)
        .build_with_rows(&rows);
    install(&mut e, SimConfig::default());
    e
}

/// Run the full operator battery and serialize every result; the returned
/// string is what must be byte-identical across broker configurations.
fn battery(e: &mut SimilarityEngine, words: &[String], strategy: Strategy, from: PeerId) -> String {
    let mut out = String::new();
    for s in [&words[0], &words[7], &words[13]] {
        let mut m: Vec<(String, String, usize)> = e
            .similar(s, Some("word"), 1, from, strategy)
            .matches
            .into_iter()
            .map(|m| (m.oid, m.matched, m.distance))
            .collect();
        m.sort();
        out.push_str(&format!("similar {s}: {m:?}\n"));
    }
    let opts = JoinOptions { strategy, left_limit: Some(6), window: JoinWindow::Fixed(4) };
    let mut pairs: Vec<(String, String)> = e
        .sim_join("word", Some("word"), 1, from, &opts)
        .pairs
        .into_iter()
        .map(|p| (p.left_value, p.right.matched))
        .collect();
    pairs.sort();
    out.push_str(&format!("join: {pairs:?}\n"));
    let top: Vec<(String, f64)> = e
        .top_n_similar(Some("word"), 3, &words[3], 3, from, strategy)
        .items
        .into_iter()
        .map(|i| (i.oid, i.score))
        .collect();
    out.push_str(&format!("topn: {top:?}\n"));
    let mut sel: Vec<String> = e
        .select_exact("word", &Value::from(words[5].as_str()), from)
        .hits
        .into_iter()
        .map(|h| h.oid)
        .collect();
    sel.sort();
    out.push_str(&format!("select: {sel:?}\n"));
    let mut kw: Vec<String> = e
        .select_keyword(&Value::from(words[9].as_str()), from)
        .hits
        .into_iter()
        .map(|h| h.oid)
        .collect();
    kw.sort();
    out.push_str(&format!("keyword: {kw:?}\n"));
    let mut rng: Vec<String> = e
        .select_range("word", &Value::from("a"), &Value::from("m"), from)
        .hits
        .into_iter()
        .map(|h| h.oid)
        .collect();
    rng.sort();
    out.push_str(&format!("range: {rng:?}\n"));
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn operators_identical_with_and_without_broker(
        replication in 1usize..4,
        seed in 0u64..500,
        strategy_qsamples in any::<bool>(),
        churn in any::<bool>(),
    ) {
        let words = bible_words(150, seed ^ 0x5EED);
        let strategy = if strategy_qsamples { Strategy::QSamples } else { Strategy::QGrams };
        let from = PeerId(1);
        // Victims chosen outside both engines, identically.
        let victims: Vec<PeerId> = if churn {
            (0..48u32).filter(|i| i % 11 == 4).map(PeerId).collect()
        } else {
            Vec::new()
        };

        let run = |cache: BrokerConfig| {
            let mut e = build(&words, replication, seed, cache);
            let before = battery(&mut e, &words, strategy, from);
            for &v in &victims {
                e.network_mut().fail_peer(v);
            }
            let after = battery(&mut e, &words, strategy, from);
            (before, after)
        };
        let baseline = run(BrokerConfig::default());
        for cfg in [BrokerConfig::cache_only(), BrokerConfig::batch_only(), BrokerConfig::enabled()] {
            let got = run(cfg);
            prop_assert_eq!(
                &got.0, &baseline.0,
                "pre-churn results diverged (replication {}, seed {}, {:?})",
                replication, seed, cfg
            );
            prop_assert_eq!(
                &got.1, &baseline.1,
                "post-churn results diverged (replication {}, seed {}, {:?})",
                replication, seed, cfg
            );
        }
    }
}

/// The numeric-path operators never touch the gram-probe pipeline, but pin
/// them too: a broker must be a strict no-op for them.
#[test]
fn numeric_topn_unaffected_by_broker() {
    let rows: Vec<sqo_storage::triple::Row> = (0..60)
        .map(|i| {
            sqo_storage::triple::Row::new(
                format!("n:{i}"),
                [("hp", Value::from((40 + i * 13 % 350) as i64))],
            )
        })
        .collect();
    let run = |cache: BrokerConfig| {
        let mut e =
            EngineBuilder::new().peers(32).seed(4).cache_config(cache).build_with_rows(&rows);
        install(&mut e, SimConfig::default());
        let from = PeerId(2);
        let res = e.top_n_numeric("hp", 5, Rank::Nn(Value::Int(150)), from);
        res.items.into_iter().map(|i| (i.oid, i.score as i64)).collect::<Vec<_>>()
    };
    assert_eq!(run(BrokerConfig::default()), run(BrokerConfig::enabled()));
}
