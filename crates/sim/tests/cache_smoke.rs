//! The CI `cache-smoke` guard: on a repeated-key workload the hot-path
//! services must actually fire (hit rate > 0, probes coalesced) and must
//! not make the workload slower (p50 no worse than cache-off), while
//! returning the same answers. Small enough to run on every PR.

use sqo_core::{BrokerConfig, EngineBuilder, JoinWindow, SimilarityEngine};
use sqo_datasets::{bible_words, string_rows};
use sqo_sim::{
    run_driver, Arrival, DriverConfig, DriverReport, LatencyModel, QueryKind, SimConfig,
};

fn engine(words: &[String]) -> SimilarityEngine {
    let rows = string_rows("word", words, "w");
    EngineBuilder::new().peers(64).q(2).seed(5).build_with_rows(&rows)
}

fn drive(words: &[String], pool: &[String], cache: BrokerConfig) -> DriverReport {
    let mut e = engine(words);
    let cfg = DriverConfig {
        clients: 8,
        queries_per_client: 5,
        arrival: Arrival::Poisson { mean_interarrival_us: 4_000 },
        mix: vec![
            QueryKind::Similar { d: 1 },
            QueryKind::SimJoin { d: 1, left_limit: Some(8), window: JoinWindow::Fixed(4) },
            QueryKind::TopN { n: 5, d_max: 3 },
        ],
        sim: SimConfig { latency: LatencyModel::Constant { us: 1_000 }, ..SimConfig::default() },
        cache,
        // Heavy skew + pinned access points: the repeated-key regime the
        // cache exists for.
        zipf_s: 1.2,
        sticky_initiators: true,
        ..DriverConfig::default()
    };
    run_driver(&mut e, "word", pool, &cfg)
}

#[test]
fn cache_smoke() {
    let words = bible_words(400, 11);
    // A deliberately small query pool: every client repeats hot strings.
    let pool: Vec<String> = words.iter().take(12).cloned().collect();

    let off = drive(&words, &pool, BrokerConfig::default());
    let on = drive(&words, &pool, BrokerConfig::enabled());

    assert_eq!(off.queries_run, on.queries_run);
    assert_eq!(
        off.total.matches, on.total.matches,
        "the hot-path services must not change any answer"
    );

    assert!(on.cache.hit_rate > 0.0, "repeated keys must hit the cache: {:?}", on.cache);
    assert!(on.cache.cache_hits > 0);
    assert_eq!(off.cache.cache_hits, 0, "cache-off run must not consult a cache");

    assert!(
        on.total.traffic.messages < off.total.traffic.messages,
        "caching+batching must cut overlay traffic ({} vs {})",
        on.total.traffic.messages,
        off.total.traffic.messages
    );
    assert!(
        on.overall.p50_us <= off.overall.p50_us,
        "cache-on p50 must be no worse on a repeated-key workload ({} vs {})",
        on.overall.p50_us,
        off.overall.p50_us
    );

    // Per-operator message counts are in the report (the bench artifact
    // surfaces them next to the percentiles).
    for op in &off.per_operator {
        assert!(op.messages > 0, "cache-off {op:?} must show its traffic");
        let on_op = on.per_operator.iter().find(|o| o.operator == op.operator).unwrap();
        assert!(
            on_op.messages <= op.messages,
            "{}: cache-on must not cost more messages ({} vs {})",
            op.operator,
            on_op.messages,
            op.messages
        );
    }
}

/// The TinyLFU admission gate A/B: under a thrashing regime — a cache far
/// smaller than the key universe, hot strings plus a long one-hit-wonder
/// tail — rejecting cold inserts must preserve the hot set and improve
/// the hit rate; and it must never change answers.
#[test]
fn tinylfu_admission_gate_ab() {
    let words = bible_words(600, 11);
    // Hot head + long tail: Zipf draws over the whole 600-word pool.
    let drive_with = |admission: bool| {
        let mut e = engine(&words);
        let cfg = DriverConfig {
            clients: 2,
            queries_per_client: 40,
            arrival: Arrival::Closed { think_us: 1_000 },
            mix: vec![QueryKind::Similar { d: 1 }],
            sim: SimConfig {
                latency: LatencyModel::Constant { us: 1_000 },
                ..SimConfig::default()
            },
            cache: BrokerConfig {
                // Far below the working set: unconditional admission
                // thrashes, the gate protects the hot entries.
                cache_capacity: 48,
                ..if admission {
                    BrokerConfig::cache_with_admission()
                } else {
                    BrokerConfig::cache_only()
                }
            },
            zipf_s: 1.1,
            sticky_initiators: true,
            ..DriverConfig::default()
        };
        run_driver(&mut e, "word", &words, &cfg)
    };
    let plain = drive_with(false);
    let gated = drive_with(true);
    assert_eq!(
        plain.total.matches, gated.total.matches,
        "the admission gate must not change any answer"
    );
    assert!(gated.cache.admission_rejects > 0, "the gate must actually fire: {:?}", gated.cache);
    assert_eq!(plain.cache.admission_rejects, 0, "no gate, no rejects");
    assert!(
        gated.cache.hit_rate >= plain.cache.hit_rate,
        "rejecting one-hit wonders must not hurt the hit rate \
         (gated {:.3} vs plain {:.3})",
        gated.cache.hit_rate,
        plain.cache.hit_rate
    );
}
