//! The driver's plan-shim contract: dispatching the workload mix through
//! prepared `sqo-plan` queries (the default) produces a byte-identical
//! report to the legacy per-operator task construction — the plan layer
//! adds zero virtual-time overhead — and plan-only pipelines run
//! end-to-end interleaved with everything else on the event queue.

use sqo_core::{EngineBuilder, JoinWindow};
use sqo_datasets::{bible_words, string_rows};
use sqo_sim::{
    run_driver, ApiMode, Arrival, DriverConfig, DriverReport, LatencyModel, QueryKind, SimConfig,
};

fn engine(words: &[String]) -> sqo_core::SimilarityEngine {
    EngineBuilder::new().peers(64).q(2).seed(41).build_with_rows(&string_rows("word", words, "w"))
}

fn run(words: &[String], api: ApiMode, mix: Vec<QueryKind>) -> DriverReport {
    let cfg = DriverConfig {
        clients: 4,
        queries_per_client: 4,
        arrival: Arrival::Poisson { mean_interarrival_us: 8_000 },
        mix,
        sim: SimConfig { latency: LatencyModel::Constant { us: 800 }, ..SimConfig::default() },
        api,
        seed: 99,
        ..DriverConfig::default()
    };
    let mut e = engine(words);
    run_driver(&mut e, "word", words, &cfg)
}

#[test]
fn plan_dispatch_matches_legacy_dispatch_byte_identically() {
    let words = bible_words(300, 5);
    let mix = vec![
        QueryKind::Similar { d: 1 },
        QueryKind::SimJoin { d: 1, left_limit: Some(6), window: JoinWindow::Fixed(2) },
        QueryKind::TopN { n: 4, d_max: 3 },
        QueryKind::Vql { d: 1 },
    ];
    let plan = run(&words, ApiMode::Plan, mix.clone());
    let legacy = run(&words, ApiMode::Legacy, mix);
    assert_eq!(
        serde_json::to_string(&plan).unwrap(),
        serde_json::to_string(&legacy).unwrap(),
        "plan shims must add zero virtual-time overhead"
    );
    assert!(plan.queries_run > 0);
}

#[test]
fn pipeline_kind_runs_interleaved_on_the_event_queue() {
    let words = bible_words(250, 9);
    let mix = vec![
        QueryKind::Pipeline { d: 1, n: 5, left_limit: Some(6), window: JoinWindow::Fixed(2) },
        QueryKind::Similar { d: 1 },
    ];
    let report = run(&words, ApiMode::Plan, mix);
    let pipeline = report
        .per_operator
        .iter()
        .find(|op| op.operator == "pipeline")
        .expect("pipeline operator family in the report");
    assert!(pipeline.summary.count > 0, "pipelines completed");
    assert!(pipeline.messages > 0, "pipelines did distributed work");
    assert!(pipeline.summary.p50_us > 0, "pipelines took virtual time");
}
