//! Offline stand-in for `proptest`, scoped to the subset this workspace
//! uses. It keeps the *property-testing* semantics — deterministic
//! pseudo-random generation over composable strategies, many cases per
//! property — and drops shrinking: a failing case panics with the assertion
//! message (which in these suites always embeds the offending values).
//!
//! Supported surface: `proptest!` with optional `#![proptest_config(..)]`,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, `Strategy` with
//! `prop_map`/`prop_recursive`/`boxed`, `Just`, `any::<T>()`, integer and
//! float ranges, regex-subset string literals, tuples, `prop_oneof!`,
//! `prop::collection::{vec, hash_set}`, and `prop::option::of`.

pub mod test_runner {
    /// Deterministic xoshiro256++ stream for test-case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed deterministically from the property's name, so every test
        /// function gets its own reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut state = h ^ 0x9E37_79B9_7F4A_7C15;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Per-property configuration (stand-in for proptest's `Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Unused (kept for struct-update compatibility).
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64, max_shrink_iters: 0 }
        }
    }
}

pub mod strategy {
    use crate::string::gen_from_pattern;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;
    use std::rc::Rc;

    /// A composable generator of values (no shrinking in this stand-in).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Recursive strategies: `expand` lifts a strategy for the inner
        /// value into one for the enclosing value; generation picks a depth
        /// in `0..=depth` and stacks `expand` that many times.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            expand: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
            S: Strategy<Value = Self::Value> + 'static,
        {
            Recursive { base: self.boxed(), expand: Rc::new(move |b| expand(b).boxed()), depth }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Reference-counted type-erased strategy (clonable, as the recursive
    /// combinator requires).
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    pub struct Recursive<T> {
        base: BoxedStrategy<T>,
        expand: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
        depth: u32,
    }

    impl<T> Strategy for Recursive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let d = rng.below(self.depth as u64 + 1);
            let mut cur = self.base.clone();
            for _ in 0..d {
                cur = (self.expand)(cur);
            }
            cur.generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        alts: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(alts: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!alts.is_empty(), "prop_oneof! needs at least one alternative");
            Self { alts }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.alts.len() as u64) as usize;
            self.alts[i].generate(rng)
        }
    }

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Bounded doubles: ±1e12 with full fractional variety.
            (rng.unit_f64() - 0.5) * 2e12
        }
    }

    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    // Integer and float ranges are strategies.
    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// Regex-subset string literals are strategies producing `String`.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            gen_from_pattern(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Inclusive-exclusive size bound for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            if self.hi <= self.lo + 1 {
                self.lo
            } else {
                self.lo + rng.below((self.hi - self.lo) as u64) as usize
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size: size.into() }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.pick(rng).max(self.size.lo);
            let mut out = HashSet::new();
            // Small domains may not admit `target` distinct values; settle
            // for the minimum after a bounded number of attempts.
            let mut attempts = 0usize;
            let max_attempts = 50 * (target + 1);
            while out.len() < target && attempts < max_attempts {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            assert!(
                out.len() >= self.size.lo,
                "hash_set generation could not reach the minimum size {}",
                self.size.lo
            );
            out
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` about a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod string {
    use crate::test_runner::TestRng;

    /// One parsed regex atom: a set of candidate chars plus a repetition
    /// count range (inclusive).
    struct Atom {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Generate a string from the regex subset used in the test suites:
    /// concatenations of character classes `[a-z0-9 :_-]`, the wildcard
    /// `.`, and literal characters, each optionally followed by `{m}` or
    /// `{m,n}`. Anything else panics.
    pub fn gen_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let atoms = parse(pattern);
        let mut out = String::new();
        for a in &atoms {
            let n = if a.max > a.min {
                a.min + rng.below((a.max - a.min + 1) as u64) as usize
            } else {
                a.min
            };
            for _ in 0..n {
                let i = rng.below(a.chars.len() as u64) as usize;
                out.push(a.chars[i]);
            }
        }
        out
    }

    fn parse(pattern: &str) -> Vec<Atom> {
        let mut atoms = Vec::new();
        let mut it = pattern.chars().peekable();
        while let Some(c) = it.next() {
            let chars: Vec<char> = match c {
                '[' => {
                    let mut set = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        let c = it
                            .next()
                            .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
                        match c {
                            ']' => break,
                            '-' if prev.is_some() && it.peek() != Some(&']') => {
                                let lo = prev.take().unwrap();
                                let hi = it.next().unwrap();
                                // `lo` was already pushed as a single; the
                                // rest of the range follows.
                                let mut x = lo as u32 + 1;
                                while x <= hi as u32 {
                                    set.push(char::from_u32(x).unwrap());
                                    x += 1;
                                }
                            }
                            c => {
                                set.push(c);
                                prev = Some(c);
                            }
                        }
                    }
                    set
                }
                '.' => (0x20u32..0x7F).map(|x| char::from_u32(x).unwrap()).collect(),
                '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '\\' => {
                    panic!("unsupported regex construct {c:?} in {pattern:?}")
                }
                c => vec![c],
            };
            // Optional repetition.
            let (min, max) = if it.peek() == Some(&'{') {
                it.next();
                let mut spec = String::new();
                for c in it.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad repetition bound"),
                        hi.trim().parse().expect("bad repetition bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(min <= max, "inverted repetition in {pattern:?}");
            atoms.push(Atom { chars, min, max });
        }
        atoms
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::strategy;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Reject the current case and move on to the next one. Only valid at the
/// top level of a `proptest!` body (it expands to `continue` on the case
/// loop; real proptest unwinds from anywhere).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

/// The property-test entry point. Each `fn name(pat in strategy, ..) { .. }`
/// expands to a `#[test]` function running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+
                );
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_patterns(x in 3usize..10, w in "[a-c]{2,4}", b in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((2..=4).contains(&w.len()));
            prop_assert!(w.chars().all(|c| ('a'..='c').contains(&c)));
            let _ = b;
        }

        #[test]
        fn collections(v in prop::collection::vec(0i64..5, 1..6),
                       s in prop::collection::hash_set("[a-z]{1,8}", 1..10)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(!s.is_empty() && s.len() < 10);
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(x == 1 || x == 2 || x == 5 || x == 6);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let gen = |label: &str| {
            let mut rng = crate::test_runner::TestRng::deterministic(label);
            (0..20).map(|_| "[a-z]{0,12}".generate(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(gen("x"), gen("x"));
        assert_ne!(gen("x"), gen("y"));
    }

    #[test]
    fn recursive_strategies_terminate() {
        use crate::strategy::{Just, Strategy};
        #[derive(Debug, Clone)]
        #[allow(dead_code)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        let strat = Just(Tree::Leaf).boxed().prop_recursive(3, 8, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::test_runner::TestRng::deterministic("tree");
        for _ in 0..50 {
            let _ = strat.generate(&mut rng);
        }
    }
}
