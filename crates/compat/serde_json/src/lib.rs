//! Offline stand-in for `serde_json`: `to_string` and `to_string_pretty`
//! over the serde stand-in's direct-JSON `Serialize` trait.

use std::fmt;

#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Compact-serialize, then re-indent (string-literal aware).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let compact = to_string(value)?;
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut chars = compact.chars().peekable();
    let newline = |out: &mut String, indent: usize| {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    };
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                out.push('"');
                // Copy the string literal verbatim, honoring escapes.
                while let Some(s) = chars.next() {
                    out.push(s);
                    match s {
                        '\\' => {
                            if let Some(esc) = chars.next() {
                                out.push(esc);
                            }
                        }
                        '"' => break,
                        _ => {}
                    }
                }
            }
            '{' | '[' => {
                out.push(c);
                // Empty containers stay on one line.
                let close = if c == '{' { '}' } else { ']' };
                if chars.peek() == Some(&close) {
                    out.push(chars.next().unwrap());
                } else {
                    indent += 1;
                    newline(&mut out, indent);
                }
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                newline(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(',');
                newline(&mut out, indent);
            }
            ':' => out.push_str(": "),
            c => out.push(c),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn pretty_round() {
        let v = vec![(1u64, "a".to_string()), (2, "b{}".to_string())];
        let pretty = super::to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\"a\""));
        assert!(pretty.contains("\"b{}\""));
        assert!(pretty.lines().count() > 3);
    }
}
