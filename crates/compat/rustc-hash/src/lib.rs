//! Offline stand-in for `rustc-hash`: the Fx (Firefox) multiply-xor hasher
//! and the `FxHashMap`/`FxHashSet` aliases. Same algorithm as the real
//! crate; no DOS resistance, high throughput on short keys.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc/Firefox hasher: rotate, xor, multiply per word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        self.add_to_hash(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<String, usize> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m["a"], 1);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(9);
        assert!(s.contains(&9));
        assert!(!s.contains(&10));
    }
}
