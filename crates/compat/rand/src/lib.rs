//! Offline stand-in for the subset of the `rand` crate this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen_range`, `gen_bool` and `gen`.
//!
//! The generator is an xoshiro256++ seeded through SplitMix64 — not the real
//! `StdRng` (ChaCha12), but a high-quality deterministic PRNG. Determinism
//! is the only contract the workspace relies on: same seed, same stream, on
//! every platform.

/// Core trait: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding by a single `u64`, the only constructor the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling helpers over an [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a (half-open or inclusive) range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// A uniform sample of `T` (`f64` in `[0, 1)`, full-range integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types `gen()` can produce (stand-in for rand's `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[inline]
fn unit_f64(x: u64) -> f64 {
    // 53 high-quality bits -> [0, 1).
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges `gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw xoshiro256++ state words, for checkpointing. Restoring
        /// via [`StdRng::from_state_words`] resumes the stream exactly
        /// where [`StdRng::state_words`] captured it.
        pub fn state_words(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from captured state words.
        ///
        /// # Panics
        /// Panics on the all-zero state, which xoshiro cannot leave (and
        /// which seeding through SplitMix64 can never produce).
        pub fn from_state_words(s: [u64; 4]) -> Self {
            assert!(s.iter().any(|&w| w != 0), "xoshiro state must be non-zero");
            Self { s }
        }

        fn from_state(mut state: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state.
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self::from_state(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_hit_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let x = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&x));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn state_words_round_trip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.gen::<u64>();
        }
        let mut b = StdRng::from_state_words(a.state_words());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
