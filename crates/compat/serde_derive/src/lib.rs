//! `#[derive(Serialize)]` for the offline serde stand-in.
//!
//! Supports exactly the shapes this workspace serializes: non-generic
//! structs with named fields, and enums whose variants are all unit-like
//! (serialized as their name string). Anything else is a compile error —
//! extend here if a new shape appears.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    // Skip outer attributes and visibility to the `struct` / `enum` keyword.
    let mut i = 0;
    while i < tokens.len() {
        if let TokenTree::Ident(id) = &tokens[i] {
            let s = id.to_string();
            if s == "struct" || s == "enum" {
                break;
            }
        }
        i += 1;
    }
    let kind = tokens[i].to_string();
    let name = match &tokens[i + 1] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive(Serialize): expected type name, got {other}"),
    };
    if matches!(&tokens[i + 2], TokenTree::Punct(p) if p.as_char() == '<') {
        panic!("derive(Serialize) stand-in does not support generic types ({name})");
    }
    let body_group = tokens[i + 2..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.clone()),
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("derive(Serialize) stand-in does not support tuple structs ({name})")
            }
            _ => None,
        })
        .unwrap_or_else(|| panic!("derive(Serialize): no braced body on {name}"));

    let code = if kind == "struct" {
        struct_impl(&name, &body_group)
    } else {
        enum_impl(&name, &body_group)
    };
    code.parse().expect("derive(Serialize): generated code must parse")
}

/// Split the items of a braced body on commas at angle-bracket depth 0.
/// Nested `()`/`[]`/`{}` arrive as single `Group` tokens, so only generic
/// argument lists need explicit depth tracking.
fn split_on_commas(group: &proc_macro::Group) -> Vec<Vec<TokenTree>> {
    let mut items: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for t in group.stream() {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    items.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        items.push(cur);
    }
    items
}

/// First identifier after attributes and visibility — the field/variant name.
fn leading_ident(item: &[TokenTree]) -> Option<String> {
    let mut j = 0;
    while j < item.len() {
        match &item[j] {
            // `#[...]` attribute (doc comments included).
            TokenTree::Punct(p) if p.as_char() == '#' => j += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                j += 1;
                // `pub(crate)` etc.
                if matches!(item.get(j), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    j += 1;
                }
            }
            TokenTree::Ident(id) => return Some(id.to_string()),
            other => panic!("derive(Serialize): unexpected token {other}"),
        }
    }
    None
}

fn struct_impl(name: &str, body: &proc_macro::Group) -> String {
    let mut stmts = String::from("out.push('{');");
    let mut first = true;
    for item in split_on_commas(body) {
        let Some(field) = leading_ident(&item) else { continue };
        if !first {
            stmts.push_str("out.push(',');");
        }
        first = false;
        stmts.push_str(&format!("out.push_str(\"\\\"{field}\\\":\");"));
        stmts.push_str(&format!("::serde::Serialize::serialize_json(&self.{field}, out);"));
    }
    stmts.push_str("out.push('}');");
    impl_block(name, &stmts)
}

fn enum_impl(name: &str, body: &proc_macro::Group) -> String {
    let mut arms = String::new();
    for item in split_on_commas(body) {
        let Some(variant) = leading_ident(&item) else { continue };
        if item.iter().any(|t| matches!(t, TokenTree::Group(_))) {
            panic!(
                "derive(Serialize) stand-in supports unit enum variants only ({name}::{variant})"
            );
        }
        arms.push_str(&format!("{name}::{variant} => out.push_str(\"\\\"{variant}\\\"\"),"));
    }
    impl_block(name, &format!("match self {{ {arms} }}"))
}

fn impl_block(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Serialize for {name} {{\
            fn serialize_json(&self, out: &mut ::std::string::String) {{ {body} }}\
        }}"
    )
}
