//! Offline stand-in for `criterion`: the same API shape (groups, benchmark
//! ids, `Bencher::iter`, the `criterion_group!`/`criterion_main!` macros)
//! backed by a simple wall-clock timer instead of the statistical engine.
//! Each benchmark runs a short warmup, then a timed batch, and prints the
//! mean iteration time.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        Self { id: format!("{name}/{param}") }
    }

    pub fn from_parameter(param: impl Display) -> Self {
        Self { id: param.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    /// Total measured time and iteration count of the last `iter` call.
    elapsed: Duration,
    iters: u64,
    target: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration round.
        let start = Instant::now();
        black_box(f());
        let one = start.elapsed().max(Duration::from_nanos(50));
        let batch = (self.target.as_nanos() / one.as_nanos().max(1)).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = batch;
    }
}

/// Stand-in for `criterion::Criterion`.
pub struct Criterion {
    /// Measurement budget per benchmark.
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { target: Duration::from_millis(200) }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { parent: self }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        run_one(self.target, &id.into().id, f);
    }
}

pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sample-size hint; the stand-in only uses the time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(self.parent.target, &id.into().id, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(self.parent.target, &id.id, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(target: Duration, id: &str, mut f: F) {
    let mut b = Bencher { elapsed: Duration::ZERO, iters: 0, target };
    f(&mut b);
    if b.iters > 0 {
        let per = b.elapsed.as_nanos() as f64 / b.iters as f64;
        println!("  {id}: {} iters, {:.0} ns/iter", b.iters, per);
    } else {
        println!("  {id}: no measurement");
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs() {
        let mut c = Criterion { target: Duration::from_millis(5) };
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("plain", |b| b.iter(|| black_box(2u64 + 2)));
        g.bench_with_input(BenchmarkId::new("with", 3), &3u64, |b, &x| b.iter(|| black_box(x * x)));
        g.finish();
        c.bench_function("top", |b| b.iter(|| black_box(1)));
    }
}
