//! Offline stand-in for `serde`, scoped to what this workspace needs: a
//! `Serialize` trait that writes JSON directly (no `Serializer` abstraction,
//! no `Deserialize`), a derive macro for plain structs and unit enums, and a
//! `serde_json` companion crate for stringification.

pub use serde_derive::Serialize;

/// JSON-producing serialization. Implementors append their compact JSON
/// representation to `out`.
pub trait Serialize {
    fn serialize_json(&self, out: &mut String);
}

macro_rules! ser_display {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}
ser_display!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&self.to_string());
        } else {
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        (*self as f64).serialize_json(out);
    }
}

/// JSON string escaping shared by all string-ish impls.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

macro_rules! ser_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    };
}
ser_tuple!(A: 0);
ser_tuple!(A: 0, B: 1);
ser_tuple!(A: 0, B: 1, C: 2);
ser_tuple!(A: 0, B: 1, C: 2, D: 3);

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&k.to_string(), out);
            out.push(':');
            v.serialize_json(out);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_strings() {
        let mut out = String::new();
        42u64.serialize_json(&mut out);
        out.push(',');
        "a\"b".serialize_json(&mut out);
        out.push(',');
        vec![1i64, 2].serialize_json(&mut out);
        out.push(',');
        Option::<u32>::None.serialize_json(&mut out);
        assert_eq!(out, r#"42,"a\"b",[1,2],null"#);
    }
}
