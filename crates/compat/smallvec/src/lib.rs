//! Offline stand-in for `smallvec`: same type-level API (`SmallVec<[T; N]>`)
//! backed by a plain `Vec<T>` — the inline-storage optimization is dropped,
//! the semantics are identical. `Deref`/`DerefMut` to `Vec<T>` make the
//! whole `Vec` surface available.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Marker trait tying `SmallVec<[T; N]>` to its item type.
pub trait Array {
    type Item;
    const CAP: usize;
}

impl<T, const N: usize> Array for [T; N] {
    type Item = T;
    const CAP: usize = N;
}

/// Vec-backed stand-in for `smallvec::SmallVec`.
pub struct SmallVec<A: Array> {
    inner: Vec<A::Item>,
}

impl<A: Array> SmallVec<A> {
    #[inline]
    pub fn new() -> Self {
        Self { inner: Vec::new() }
    }

    #[inline]
    pub fn with_capacity(cap: usize) -> Self {
        Self { inner: Vec::with_capacity(cap) }
    }

    #[inline]
    pub fn from_vec(inner: Vec<A::Item>) -> Self {
        Self { inner }
    }

    #[inline]
    pub fn into_vec(self) -> Vec<A::Item> {
        self.inner
    }

    // Inherent mirrors of `Vec` accessors, so fully-qualified calls like
    // `SmallVec::len` resolve without going through `Deref`.
    #[inline]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl<A: Array> Default for SmallVec<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Array> Deref for SmallVec<A> {
    type Target = Vec<A::Item>;
    #[inline]
    fn deref(&self) -> &Vec<A::Item> {
        &self.inner
    }
}

impl<A: Array> DerefMut for SmallVec<A> {
    #[inline]
    fn deref_mut(&mut self) -> &mut Vec<A::Item> {
        &mut self.inner
    }
}

impl<A: Array> Clone for SmallVec<A>
where
    A::Item: Clone,
{
    fn clone(&self) -> Self {
        Self { inner: self.inner.clone() }
    }
}

impl<A: Array> fmt::Debug for SmallVec<A>
where
    A::Item: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<A: Array> PartialEq for SmallVec<A>
where
    A::Item: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner
    }
}

impl<A: Array> Eq for SmallVec<A> where A::Item: Eq {}

impl<A: Array> FromIterator<A::Item> for SmallVec<A> {
    fn from_iter<I: IntoIterator<Item = A::Item>>(iter: I) -> Self {
        Self { inner: iter.into_iter().collect() }
    }
}

impl<A: Array> Extend<A::Item> for SmallVec<A> {
    fn extend<I: IntoIterator<Item = A::Item>>(&mut self, iter: I) {
        self.inner.extend(iter)
    }
}

impl<A: Array> IntoIterator for SmallVec<A> {
    type Item = A::Item;
    type IntoIter = std::vec::IntoIter<A::Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a, A: Array> IntoIterator for &'a SmallVec<A> {
    type Item = &'a A::Item;
    type IntoIter = std::slice::Iter<'a, A::Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl<'a, A: Array> IntoIterator for &'a mut SmallVec<A> {
    type Item = &'a mut A::Item;
    type IntoIter = std::slice::IterMut<'a, A::Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter_mut()
    }
}

impl<A: Array> From<Vec<A::Item>> for SmallVec<A> {
    fn from(inner: Vec<A::Item>) -> Self {
        Self { inner }
    }
}

/// `smallvec!` constructor macro (same surface as the real crate's).
#[macro_export]
macro_rules! smallvec {
    () => { $crate::SmallVec::new() };
    ($($x:expr),+ $(,)?) => { $crate::SmallVec::from_vec(vec![$($x),+]) };
    ($elem:expr; $n:expr) => { $crate::SmallVec::from_vec(vec![$elem; $n]) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_surface_via_deref() {
        let mut v: SmallVec<[u32; 4]> = SmallVec::new();
        v.push(1);
        v.push(2);
        assert_eq!(v.len(), 2);
        assert!(v.contains(&2));
        assert_eq!(v[0], 1);
        let doubled: SmallVec<[u32; 4]> = v.iter().map(|x| x * 2).collect();
        assert_eq!(doubled.into_vec(), vec![2, 4]);
        let cloned = vec![SmallVec::<[u32; 4]>::new(); 3];
        assert_eq!(cloned.len(), 3);
    }
}
