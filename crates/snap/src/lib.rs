//! # sqo-snap — checkpoint, fork, and deterministic replay
//!
//! Every layer of the workspace is deterministic: the overlay draws from
//! a seeded xoshiro256++ stream, the event queues break ties with global
//! sequence numbers, the latency models are seeded per run. `sqo-snap`
//! turns that determinism into a facility: the **complete simulation
//! state** — overlay stores, routing arenas, churn flags, traffic
//! counters, every RNG stream position, broker caches mid-decay, the
//! paused driver's event queue and histograms — freezes into one
//! versioned binary artifact, and a restored run is **byte-identical** to
//! the run that never stopped.
//!
//! Three workflows fall out:
//!
//! * **Checkpoint/resume** — pause a long workload at a quiesce boundary
//!   ([`sqo_sim::run_driver_until`]), persist the [`Snapshot`], resume it
//!   later (possibly in another process) with [`sqo_sim::resume_driver`];
//!   the final [`DriverReport`](sqo_sim::DriverReport) matches the
//!   uninterrupted run byte for byte.
//! * **Fork** — build and warm one world, then [`Snapshot::fork`] N
//!   engines off it. Same-config forks are mutually byte-identical;
//!   diverging forks re-seed their workloads with
//!   [`sqo_sim::seed::derive`]`(seed, `[`FORK_STREAM`](sqo_sim::seed::FORK_STREAM)`, i)`.
//!   The `latency` bench's `--warm-checkpoint` mode sweeps a parameter
//!   grid this way without rebuilding the network per cell.
//! * **Replay** — the scale core's event-level image
//!   ([`ScaleCheckpoint`]) rides along, so a
//!   paused million-peer run resumes on *any* shard count or threading
//!   mode and still lands on the uninterrupted
//!   [`ScaleOutcome`](sqo_sim::ScaleOutcome).
//!
//! ## Artifact format
//!
//! A `b"SQSN"` magic, a little-endian `u32` [`SCHEMA_VERSION`], then the
//! world/driver/scale sections in the explicit layout of [`wire`] (the
//! vendored serde stand-in cannot deserialize, so the codec is
//! hand-rolled — and therefore versionable byte by byte).
//! [`Snapshot::from_bytes`] refuses anything else: wrong magic is
//! [`SnapError::BadMagic`], a version skew is
//! [`SnapError::SchemaMismatch`], and every decoder is bounds-checked so
//! corrupt input fails with an error, never a panic or a huge
//! allocation. [`SnapError::exit_code`] mirrors the bench regress gate's
//! convention (schema/format mismatches exit 3, distinct from "the run
//! diverged").
//!
//! What is **not** in the artifact: static configuration. The caller
//! that restores a snapshot supplies the same [`EngineConfig`] (and
//! `DriverConfig`/`ScaleConfig`) the original run used — configs are
//! code-adjacent inputs, snapshots carry only the dynamic state derived
//! from them. [`Snapshot::restore_engine`] cross-checks the network
//! config embedded in the world image and panics on a mismatched world.
//!
//! ```
//! use sqo_core::EngineBuilder;
//! use sqo_datasets::{bible_words, string_rows};
//! use sqo_sim::{run_driver, DriverConfig};
//! use sqo_snap::Snapshot;
//!
//! let words = bible_words(120, 5);
//! let rows = string_rows("word", &words, "w");
//! let engine = EngineBuilder::new().peers(32).q(2).seed(9).build_with_rows(&rows);
//!
//! // Freeze the warm world once…
//! let snap = Snapshot::capture(&engine);
//! let bytes = snap.to_bytes();
//!
//! // …and fork two identical runs from it, no rebuild.
//! let snap = Snapshot::from_bytes(&bytes).unwrap();
//! let cfg = DriverConfig { clients: 2, queries_per_client: 2, ..Default::default() };
//! let [mut a, mut b]: [_; 2] =
//!     snap.fork(engine.config(), 2).try_into().ok().unwrap();
//! let ra = run_driver(&mut a, "word", &words, &cfg);
//! let rb = run_driver(&mut b, "word", &words, &cfg);
//! assert_eq!(
//!     serde_json::to_string(&ra).unwrap(),
//!     serde_json::to_string(&rb).unwrap(),
//!     "same-config forks are byte-identical"
//! );
//! ```

pub mod wire;

use sqo_cache::BrokerState;
use sqo_core::{EngineConfig, SimilarityEngine};
use sqo_overlay::{Network, NetworkState};
use sqo_sim::driver::DriverCheckpoint;
use sqo_sim::scale::ScaleCheckpoint;
use sqo_storage::{Posting, PublishStats};
use std::fmt;

/// Version of the artifact layout. Bump on any wire-format change;
/// [`Snapshot::from_bytes`] refuses other versions outright.
///
/// v2: query stats carry the degradation counters
/// (`partitions_addressed` / `partitions_answered` / `retries` /
/// `gave_up`), driver checkpoints carry the early/late phase
/// accumulators, repair totals and diagnostics, and pending fault /
/// fault-clear events serialize alongside arrivals and churn.
pub const SCHEMA_VERSION: u32 = 2;

/// Artifact magic: "SQO SNapshot".
pub const MAGIC: [u8; 4] = *b"SQSN";

/// Decode failure. Restores either succeed completely or fail with one of
/// these — a half-decoded snapshot is never handed back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The input does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// The artifact was written by a different wire-format version.
    SchemaMismatch { found: u32, expected: u32 },
    /// The input ended mid-field.
    Truncated,
    /// A tag, index, or length was out of range.
    Corrupt(&'static str),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::BadMagic => write!(f, "not a snapshot artifact (bad magic)"),
            SnapError::SchemaMismatch { found, expected } => {
                write!(f, "snapshot schema v{found}, this build reads v{expected}")
            }
            SnapError::Truncated => write!(f, "snapshot truncated mid-field"),
            SnapError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

impl SnapError {
    /// Process exit code for CLI consumers, aligned with the bench
    /// regress gate's convention (`sqo_bench::regress::EXIT_MISMATCH`):
    /// a schema/format mismatch exits `3` so CI can tell "incompatible
    /// artifact" from "the run itself failed" (`2`).
    pub fn exit_code(&self) -> i32 {
        match self {
            SnapError::SchemaMismatch { .. } | SnapError::BadMagic => 3,
            SnapError::Truncated | SnapError::Corrupt(_) => 2,
        }
    }
}

/// The engine-side world: everything [`SimilarityEngine`] owns that a
/// query can observe. Captured by [`Snapshot::capture`].
#[derive(Debug, Clone)]
pub struct WorldState {
    /// The overlay image (stores, routing, counters, churn flags, RNG).
    pub net: NetworkState<Posting>,
    /// Storage-overhead accounting of the initial publication.
    pub publish: PublishStats,
    /// Lifetime edit-distance comparison counter.
    pub edit_comparisons: u64,
    /// The installed probe broker's image (posting cache + channel
    /// pool), when one is installed and checkpointable.
    pub broker: Option<BrokerState>,
}

/// One frozen simulation: the world, plus whichever mid-run images apply.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub world: WorldState,
    /// A paused concurrent-workload run ([`sqo_sim::run_driver_until`]).
    pub driver: Option<DriverCheckpoint>,
    /// A paused scale-core run ([`sqo_sim::run_serial_until`]).
    pub scale: Option<ScaleCheckpoint>,
}

impl Snapshot {
    /// Freeze the engine's world. Use after building (a warm template to
    /// [`fork`](Snapshot::fork) from) or after a completed run.
    pub fn capture(engine: &SimilarityEngine) -> Self {
        Snapshot {
            world: WorldState {
                net: engine.network().export_state(),
                publish: *engine.publish_stats(),
                edit_comparisons: engine.edit_comparisons(),
                broker: engine.broker_state(),
            },
            driver: None,
            scale: None,
        }
    }

    /// Freeze the world of a run paused by [`sqo_sim::run_driver_until`],
    /// together with its driver checkpoint. The engine must be the one
    /// the pause happened on — the checkpoint's virtual-time image and
    /// the world's RNG/counter state form one consistent cut.
    pub fn capture_paused(engine: &SimilarityEngine, ckpt: DriverCheckpoint) -> Self {
        let mut s = Snapshot::capture(engine);
        s.driver = Some(ckpt);
        s
    }

    /// Attach a paused scale-core run to the snapshot (the topology is
    /// re-derived from the restored network at resume time).
    pub fn with_scale(mut self, ckpt: ScaleCheckpoint) -> Self {
        self.scale = Some(ckpt);
        self
    }

    /// Rebuild a live engine from the world image. `cfg` must be the
    /// original build's config — the embedded network config is
    /// cross-checked, and publish/query defaults come from the caller
    /// (static configuration is not part of the artifact).
    ///
    /// # Panics
    /// Panics if `cfg.network` differs from the network config the world
    /// was captured under.
    pub fn restore_engine(&self, cfg: &EngineConfig) -> SimilarityEngine {
        assert_eq!(
            cfg.network, self.world.net.cfg,
            "restore config does not match the captured world"
        );
        SimilarityEngine::from_parts(
            cfg.clone(),
            Network::import_state(self.world.net.clone()),
            self.world.publish,
            self.world.edit_comparisons,
            self.world.broker.clone(),
        )
    }

    /// Branch `n` independent engines off one warm world. Each fork is a
    /// full restore: same stores (sharing preserved), same RNG position,
    /// same broker contents — so forks driven with the same workload
    /// config produce byte-identical reports, and forks meant to diverge
    /// re-seed their workloads with
    /// [`sqo_sim::seed::derive`]`(seed, FORK_STREAM, i)`.
    pub fn fork(&self, cfg: &EngineConfig, n: usize) -> Vec<SimilarityEngine> {
        (0..n).map(|_| self.restore_engine(cfg)).collect()
    }

    /// Serialize to the versioned artifact format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = wire::Enc::new();
        e.buf.extend_from_slice(&MAGIC);
        e.u32(SCHEMA_VERSION);
        // The triple intern table spans the whole artifact (network lists
        // and broker-cached lists share allocations), so it is collected
        // up front and written before anything that references it.
        let mut triples = wire::TripleTable::new();
        triples.collect(&self.world);
        triples.encode(&mut e);
        wire::network_state(&mut e, &mut triples, &self.world.net);
        wire::publish_stats(&mut e, &self.world.publish);
        e.u64(self.world.edit_comparisons);
        e.opt(self.world.broker.as_ref(), |e, b| wire::broker_state(e, &mut triples, b));
        e.opt(self.driver.as_ref(), wire::driver_checkpoint);
        e.opt(self.scale.as_ref(), wire::scale_checkpoint);
        e.buf
    }

    /// Decode an artifact, checking magic and schema version first.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapError> {
        if bytes.len() < MAGIC.len() + 4 || bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapError::BadMagic);
        }
        let mut d = wire::Dec::new(&bytes[MAGIC.len()..]);
        let found = d.u32()?;
        if found != SCHEMA_VERSION {
            return Err(SnapError::SchemaMismatch { found, expected: SCHEMA_VERSION });
        }
        let table = wire::decode_triple_table(&mut d)?;
        let net = wire::de_network_state(&mut d, &table)?;
        let publish = wire::de_publish_stats(&mut d)?;
        let edit_comparisons = d.u64()?;
        let broker = d.opt(|d| wire::de_broker_state(d, &table))?;
        let driver = d.opt(wire::de_driver_checkpoint)?;
        let scale = d.opt(wire::de_scale_checkpoint)?;
        if !d.is_empty() {
            return Err(SnapError::Corrupt("trailing bytes after snapshot"));
        }
        Ok(Snapshot { world: WorldState { net, publish, edit_comparisons, broker }, driver, scale })
    }
}
