//! The snapshot wire format: a hand-rolled little-endian binary codec.
//!
//! The workspace's vendored `serde` stand-in serializes but does not
//! deserialize, so the snapshot artifact has its own explicit codec. That
//! is a feature, not a workaround: every byte of the artifact is written
//! by a function in this file, the layout is stable under refactors of
//! the source structs, and the version envelope (`MAGIC` +
//! [`SCHEMA_VERSION`](crate::SCHEMA_VERSION)) is checked before a single
//! field is decoded.
//!
//! Layout conventions:
//!
//! * all integers little-endian; `usize` travels as `u64`,
//! * `f64` travels as its IEEE-754 bit pattern (`to_bits`), so restored
//!   floats are bit-identical,
//! * sequences are a `u64` length followed by the elements,
//! * options are a `u8` tag (0 = none, 1 = some),
//! * enums are a `u8` discriminant followed by the variant's fields.
//!
//! Triples are interned: postings share `Arc<Triple>` allocations in the
//! live engine (one triple backs its base posting and every gram posting
//! cut from it), and the codec writes each distinct triple once, by
//! pointer identity, into a table up front. Postings then reference the
//! table by index, so a decoded world re-shares the allocations — the
//! artifact stays near the *deduplicated* size of the store, and restored
//! memory footprints match the original's.

use crate::SnapError;
use sqo_cache::{
    BrokerConfig, BrokerCounters, BrokerState, ChannelPoolState, LruEntryState, LruState,
    PartitionChannel, SketchState,
};
use sqo_overlay::{Key, Metrics, NetworkConfig, NetworkState, PeerId, PeerLoad, SimLatency};
use sqo_sim::driver::{DriverCheckpoint, EvSnap, HistParts, RepairTotals};
use sqo_sim::scale::{ScaleCheckpoint, ScaleEv};
use sqo_sim::{NetSimState, QueueState};
use sqo_storage::{BaseKind, Posting, Triple, TripleRef, Value};
use std::collections::HashMap;
use std::sync::Arc;

use sqo_core::QueryStats;

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

/// Append-only encoder over a byte buffer.
pub struct Enc {
    pub buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Self {
        Enc { buf: Vec::new() }
    }
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
    pub fn seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) {
        self.usize(items.len());
        for it in items {
            f(self, it);
        }
    }
    pub fn opt<T>(&mut self, v: Option<&T>, f: impl FnOnce(&mut Self, &T)) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                f(self, x);
            }
        }
    }
}

impl Default for Enc {
    fn default() -> Self {
        Self::new()
    }
}

/// Cursor-style decoder; every read is bounds-checked and returns a
/// [`SnapError`] instead of panicking on truncated or corrupt input.
pub struct Dec<'a> {
    b: &'a [u8],
    pos: usize,
}

type R<T> = Result<T, SnapError>;

impl<'a> Dec<'a> {
    pub fn new(b: &'a [u8]) -> Self {
        Dec { b, pos: 0 }
    }
    pub fn remaining(&self) -> usize {
        self.b.len() - self.pos
    }
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }
    fn take(&mut self, n: usize) -> R<&'a [u8]> {
        if self.remaining() < n {
            return Err(SnapError::Truncated);
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    pub fn u8(&mut self) -> R<u8> {
        Ok(self.take(1)?[0])
    }
    pub fn u32(&mut self) -> R<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    pub fn u64(&mut self) -> R<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    pub fn usize(&mut self) -> R<usize> {
        usize::try_from(self.u64()?).map_err(|_| SnapError::Corrupt("usize overflow"))
    }
    pub fn i64(&mut self) -> R<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    pub fn f64(&mut self) -> R<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    pub fn bool(&mut self) -> R<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Corrupt("bool tag out of range")),
        }
    }
    pub fn bytes(&mut self) -> R<&'a [u8]> {
        let n = self.usize()?;
        self.take(n)
    }
    pub fn string(&mut self) -> R<String> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| SnapError::Corrupt("invalid utf-8"))
    }
    /// Sequence length with a sanity bound: a sequence of `len` elements
    /// needs at least `len` bytes of input, so a corrupt length can never
    /// trigger a huge allocation.
    pub fn seq_len(&mut self) -> R<usize> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(SnapError::Corrupt("sequence length exceeds input"));
        }
        Ok(n)
    }
    pub fn seq<T>(&mut self, mut f: impl FnMut(&mut Self) -> R<T>) -> R<Vec<T>> {
        let n = self.seq_len()?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(f(self)?);
        }
        Ok(v)
    }
    pub fn opt<T>(&mut self, f: impl FnOnce(&mut Self) -> R<T>) -> R<Option<T>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            _ => Err(SnapError::Corrupt("option tag out of range")),
        }
    }
}

// ---------------------------------------------------------------------
// Triple interning
// ---------------------------------------------------------------------

/// Encode-side triple intern table: distinct `Arc<Triple>` allocations in
/// discovery order, deduplicated by pointer identity.
pub struct TripleTable {
    order: Vec<TripleRef>,
    index: HashMap<*const Triple, u32>,
}

impl TripleTable {
    pub fn new() -> Self {
        TripleTable { order: Vec::new(), index: HashMap::new() }
    }

    fn intern(&mut self, t: &TripleRef) -> u32 {
        *self.index.entry(Arc::as_ptr(t)).or_insert_with(|| {
            self.order.push(TripleRef::clone(t));
            (self.order.len() - 1) as u32
        })
    }

    /// Walk every posting reachable from the world image (network lists
    /// and broker-cached lists) so the table is complete before encoding.
    pub fn collect(&mut self, world: &crate::WorldState) {
        for list in &world.net.lists {
            for p in list {
                self.intern(p.triple());
            }
        }
        if let Some(b) = &world.broker {
            for e in &b.cache.entries {
                for p in e.value.iter() {
                    self.intern(p.triple());
                }
            }
        }
    }

    pub fn encode(&self, e: &mut Enc) {
        e.seq(&self.order, |e, t| triple(e, t));
    }
}

impl Default for TripleTable {
    fn default() -> Self {
        Self::new()
    }
}

pub fn decode_triple_table(d: &mut Dec<'_>) -> R<Vec<TripleRef>> {
    d.seq(|d| Ok(Arc::new(de_triple(d)?)))
}

fn triple(e: &mut Enc, t: &Triple) {
    e.str(&t.oid);
    e.str(t.attr.as_str());
    match &t.value {
        Value::Str(s) => {
            e.u8(0);
            e.str(s);
        }
        Value::Int(i) => {
            e.u8(1);
            e.i64(*i);
        }
        Value::Float(f) => {
            e.u8(2);
            e.f64(*f);
        }
    }
}

fn de_triple(d: &mut Dec<'_>) -> R<Triple> {
    let oid = d.string()?;
    let attr = d.string()?;
    let value = match d.u8()? {
        0 => Value::Str(d.string()?),
        1 => Value::Int(d.i64()?),
        2 => Value::Float(d.f64()?),
        _ => return Err(SnapError::Corrupt("value tag out of range")),
    };
    Ok(Triple::new(oid, attr, value))
}

fn posting(e: &mut Enc, t: &mut TripleTable, p: &Posting) {
    match p {
        Posting::Base { kind, triple } => {
            e.u8(0);
            e.u32(t.intern(triple));
            e.u8(match kind {
                BaseKind::Oid => 0,
                BaseKind::AttrValue => 1,
                BaseKind::Value => 2,
            });
        }
        Posting::InstanceGram { triple, gram, pos, carries_value } => {
            e.u8(1);
            e.u32(t.intern(triple));
            e.str(gram);
            e.u32(*pos);
            e.bool(*carries_value);
        }
        Posting::SchemaGram { triple, gram, pos } => {
            e.u8(2);
            e.u32(t.intern(triple));
            e.str(gram);
            e.u32(*pos);
        }
        Posting::ShortValue { triple } => {
            e.u8(3);
            e.u32(t.intern(triple));
        }
        Posting::ShortAttr { triple } => {
            e.u8(4);
            e.u32(t.intern(triple));
        }
    }
}

fn de_posting(d: &mut Dec<'_>, table: &[TripleRef]) -> R<Posting> {
    let tag = d.u8()?;
    let idx = d.u32()? as usize;
    let triple =
        TripleRef::clone(table.get(idx).ok_or(SnapError::Corrupt("triple index out of range"))?);
    Ok(match tag {
        0 => Posting::Base {
            kind: match d.u8()? {
                0 => BaseKind::Oid,
                1 => BaseKind::AttrValue,
                2 => BaseKind::Value,
                _ => return Err(SnapError::Corrupt("base-kind tag out of range")),
            },
            triple,
        },
        1 => Posting::InstanceGram {
            triple,
            gram: d.string()?,
            pos: d.u32()?,
            carries_value: d.bool()?,
        },
        2 => Posting::SchemaGram { triple, gram: d.string()?, pos: d.u32()? },
        3 => Posting::ShortValue { triple },
        4 => Posting::ShortAttr { triple },
        _ => return Err(SnapError::Corrupt("posting tag out of range")),
    })
}

// ---------------------------------------------------------------------
// Small overlay pieces
// ---------------------------------------------------------------------

fn key(e: &mut Enc, k: &Key) {
    e.bytes(k.as_bytes());
    e.usize(k.len());
}

fn de_key(d: &mut Dec<'_>) -> R<Key> {
    let bytes = d.bytes()?.to_vec();
    let len = d.usize()?;
    if bytes.len() != len.div_ceil(8) {
        return Err(SnapError::Corrupt("key byte count does not match bit length"));
    }
    Ok(Key::from_raw_parts(bytes, len))
}

fn metrics(e: &mut Enc, m: &Metrics) {
    for v in [
        m.messages,
        m.bytes,
        m.route_hops,
        m.forward_msgs,
        m.result_msgs,
        m.result_bytes,
        m.failed_routes,
        m.local_items_scanned,
    ] {
        e.u64(v);
    }
}

fn de_metrics(d: &mut Dec<'_>) -> R<Metrics> {
    Ok(Metrics {
        messages: d.u64()?,
        bytes: d.u64()?,
        route_hops: d.u64()?,
        forward_msgs: d.u64()?,
        result_msgs: d.u64()?,
        result_bytes: d.u64()?,
        failed_routes: d.u64()?,
        local_items_scanned: d.u64()?,
    })
}

fn sim_latency(e: &mut Enc, s: &SimLatency) {
    for v in [
        s.start_us,
        s.end_us,
        s.elapsed_us,
        s.net_us,
        s.queue_us,
        s.service_us,
        s.route_us,
        s.forward_us,
        s.result_us,
        s.timed_messages,
        s.retransmissions,
        s.crit_net_us,
        s.crit_queue_us,
        s.crit_service_us,
        s.crit_stall_us,
    ] {
        e.u64(v);
    }
}

fn de_sim_latency(d: &mut Dec<'_>) -> R<SimLatency> {
    Ok(SimLatency {
        start_us: d.u64()?,
        end_us: d.u64()?,
        elapsed_us: d.u64()?,
        net_us: d.u64()?,
        queue_us: d.u64()?,
        service_us: d.u64()?,
        route_us: d.u64()?,
        forward_us: d.u64()?,
        result_us: d.u64()?,
        timed_messages: d.u64()?,
        retransmissions: d.u64()?,
        crit_net_us: d.u64()?,
        crit_queue_us: d.u64()?,
        crit_service_us: d.u64()?,
        crit_stall_us: d.u64()?,
    })
}

fn rng_words(e: &mut Enc, w: &[u64; 4]) {
    for v in w {
        e.u64(*v);
    }
}

fn de_rng_words(d: &mut Dec<'_>) -> R<[u64; 4]> {
    Ok([d.u64()?, d.u64()?, d.u64()?, d.u64()?])
}

// ---------------------------------------------------------------------
// Network image
// ---------------------------------------------------------------------

pub fn network_state(e: &mut Enc, t: &mut TripleTable, s: &NetworkState<Posting>) {
    let c = &s.cfg;
    e.usize(c.peers);
    e.usize(c.replication);
    e.usize(c.refs_per_level);
    e.usize(c.msg_header_bytes);
    e.u64(c.seed);
    e.bool(c.uniform_refs);
    e.seq(&s.paths, key);
    e.seq(&s.part_peers, |e, ps| e.seq(ps, |e, p| e.u32(p.0)));
    e.seq(&s.peer_partition, |e, v| e.u32(*v));
    e.seq(&s.alive, |e, v| e.bool(*v));
    e.seq(&s.routing_refs, |e, p| e.u32(p.0));
    e.seq(&s.routing_slice_off, |e, v| e.u32(*v));
    e.seq(&s.routing_peer_off, |e, v| e.u32(*v));
    e.seq(&s.interned_keys, key);
    e.usize(s.lists.len());
    for list in &s.lists {
        e.usize(list.len());
        for p in list {
            posting(e, t, p);
        }
    }
    e.seq(&s.stores, |e, run| {
        e.seq(run, |e, (k, l)| {
            e.u32(*k);
            e.u32(*l);
        })
    });
    metrics(e, &s.metrics);
    e.seq(&s.peer_load, |e, p| {
        for v in [p.msgs_sent, p.msgs_recv, p.bytes_sent, p.bytes_recv] {
            e.u64(v);
        }
    });
    e.u64(s.next_trace_query);
    e.u64(s.cache_epoch);
    rng_words(e, &s.rng);
}

pub fn de_network_state(d: &mut Dec<'_>, table: &[TripleRef]) -> R<NetworkState<Posting>> {
    let cfg = NetworkConfig {
        peers: d.usize()?,
        replication: d.usize()?,
        refs_per_level: d.usize()?,
        msg_header_bytes: d.usize()?,
        seed: d.u64()?,
        uniform_refs: d.bool()?,
    };
    Ok(NetworkState {
        cfg,
        paths: d.seq(de_key)?,
        part_peers: d.seq(|d| d.seq(|d| Ok(PeerId(d.u32()?))))?,
        peer_partition: d.seq(|d| d.u32())?,
        alive: d.seq(|d| d.bool())?,
        routing_refs: d.seq(|d| Ok(PeerId(d.u32()?)))?,
        routing_slice_off: d.seq(|d| d.u32())?,
        routing_peer_off: d.seq(|d| d.u32())?,
        interned_keys: d.seq(de_key)?,
        lists: d.seq(|d| d.seq(|d| de_posting(d, table)))?,
        stores: d.seq(|d| d.seq(|d| Ok((d.u32()?, d.u32()?))))?,
        metrics: de_metrics(d)?,
        peer_load: d.seq(|d| {
            Ok(PeerLoad {
                msgs_sent: d.u64()?,
                msgs_recv: d.u64()?,
                bytes_sent: d.u64()?,
                bytes_recv: d.u64()?,
            })
        })?,
        next_trace_query: d.u64()?,
        cache_epoch: d.u64()?,
        rng: de_rng_words(d)?,
    })
}

// ---------------------------------------------------------------------
// Broker image
// ---------------------------------------------------------------------

pub fn broker_state(e: &mut Enc, t: &mut TripleTable, b: &BrokerState) {
    let c = &b.cfg;
    e.bool(c.cache);
    e.usize(c.cache_capacity);
    e.u64(c.cache_ttl_us);
    e.bool(c.admission);
    e.bool(c.batch);
    e.u64(c.batch_window_us);
    let k = &b.counters;
    for v in [
        k.cache_hits,
        k.cache_misses,
        k.probes_coalesced,
        k.channels_opened,
        k.admission_rejects,
        k.messages_saved,
    ] {
        e.u64(v);
    }
    let l = &b.cache;
    e.u64(l.capacity);
    e.u64(l.ttl_us);
    e.u64(l.tick);
    e.u64(l.rejected);
    e.seq(&l.entries, |e, ent| {
        e.u32(ent.key.0 .0);
        key(e, &ent.key.1);
        e.usize(ent.value.len());
        for p in ent.value.iter() {
            posting(e, t, p);
        }
        e.u64(ent.epoch);
        e.u64(ent.inserted_us);
        e.u64(ent.last_used);
    });
    e.opt(l.sketch.as_ref(), |e, s| {
        e.bytes(&s.table);
        e.u64(s.slots);
        e.seq(&s.doorkeeper, |e, v| e.u64(*v));
        e.u64(s.recorded);
        e.u64(s.reset_at);
    });
    let ch = &b.channels;
    e.u64(ch.window_us);
    e.seq(&ch.channels, |e, (part, c)| {
        e.u64(*part);
        e.u32(c.owner.0);
        e.u64(c.opened_us);
        e.u64(c.route_hops);
        e.u64(c.epoch);
    });
    e.u64(ch.opened);
    e.u64(ch.rides);
}

pub fn de_broker_state(d: &mut Dec<'_>, table: &[TripleRef]) -> R<BrokerState> {
    let cfg = BrokerConfig {
        cache: d.bool()?,
        cache_capacity: d.usize()?,
        cache_ttl_us: d.u64()?,
        admission: d.bool()?,
        batch: d.bool()?,
        batch_window_us: d.u64()?,
    };
    let counters = BrokerCounters {
        cache_hits: d.u64()?,
        cache_misses: d.u64()?,
        probes_coalesced: d.u64()?,
        channels_opened: d.u64()?,
        admission_rejects: d.u64()?,
        messages_saved: d.u64()?,
    };
    let capacity = d.u64()?;
    let ttl_us = d.u64()?;
    let tick = d.u64()?;
    let rejected = d.u64()?;
    let entries = d.seq(|d| {
        Ok(LruEntryState {
            key: (PeerId(d.u32()?), de_key(d)?),
            value: Arc::new(d.seq(|d| de_posting(d, table))?),
            epoch: d.u64()?,
            inserted_us: d.u64()?,
            last_used: d.u64()?,
        })
    })?;
    let sketch = d.opt(|d| {
        Ok(SketchState {
            table: d.bytes()?.to_vec(),
            slots: d.u64()?,
            doorkeeper: d.seq(|d| d.u64())?,
            recorded: d.u64()?,
            reset_at: d.u64()?,
        })
    })?;
    let cache = LruState { capacity, ttl_us, tick, rejected, entries, sketch };
    let channels = ChannelPoolState {
        window_us: d.u64()?,
        channels: d.seq(|d| {
            Ok((
                d.u64()?,
                PartitionChannel {
                    owner: PeerId(d.u32()?),
                    opened_us: d.u64()?,
                    route_hops: d.u64()?,
                    epoch: d.u64()?,
                },
            ))
        })?,
        opened: d.u64()?,
        rides: d.u64()?,
    };
    Ok(BrokerState { cfg, counters, cache, channels })
}

// ---------------------------------------------------------------------
// Driver checkpoint
// ---------------------------------------------------------------------

fn query_stats(e: &mut Enc, s: &QueryStats) {
    metrics(e, &s.traffic);
    e.opt(s.sim.as_ref(), sim_latency);
    e.usize(s.probes);
    e.usize(s.candidates);
    e.u64(s.edit_comparisons);
    e.usize(s.matches);
    e.usize(s.rounds);
    e.u64(s.cache_hits);
    e.u64(s.cache_misses);
    e.u64(s.probes_coalesced);
    e.usize(s.join_window_peak);
    e.u64(s.join_window_shrinks);
    e.u64(s.partitions_addressed);
    e.u64(s.partitions_answered);
    e.u64(s.retries);
    e.u64(s.gave_up);
}

fn de_query_stats(d: &mut Dec<'_>) -> R<QueryStats> {
    Ok(QueryStats {
        traffic: de_metrics(d)?,
        sim: d.opt(de_sim_latency)?,
        probes: d.usize()?,
        candidates: d.usize()?,
        edit_comparisons: d.u64()?,
        matches: d.usize()?,
        rounds: d.usize()?,
        cache_hits: d.u64()?,
        cache_misses: d.u64()?,
        probes_coalesced: d.u64()?,
        join_window_peak: d.usize()?,
        join_window_shrinks: d.u64()?,
        partitions_addressed: d.u64()?,
        partitions_answered: d.u64()?,
        retries: d.u64()?,
        gave_up: d.u64()?,
    })
}

fn hist(e: &mut Enc, h: &HistParts) {
    let (count, sum, min, max, buckets) = h;
    e.u64(*count);
    e.u64(*sum);
    e.u64(*min);
    e.u64(*max);
    e.seq(buckets, |e, (b, n)| {
        e.u32(*b);
        e.u64(*n);
    });
}

fn de_hist(d: &mut Dec<'_>) -> R<HistParts> {
    Ok((d.u64()?, d.u64()?, d.u64()?, d.u64()?, d.seq(|d| Ok((d.u32()?, d.u64()?)))?))
}

fn repair_totals(e: &mut Enc, r: &RepairTotals) {
    for v in [r.passes, r.recruited, r.bytes_copied, r.lost_partitions, r.unfilled_deficits] {
        e.u64(v);
    }
}

fn de_repair_totals(d: &mut Dec<'_>) -> R<RepairTotals> {
    Ok(RepairTotals {
        passes: d.u64()?,
        recruited: d.u64()?,
        bytes_copied: d.u64()?,
        lost_partitions: d.u64()?,
        unfilled_deficits: d.u64()?,
    })
}

fn netsim_state(e: &mut Enc, s: &NetSimState) {
    rng_words(e, &s.rng);
    e.u64(s.frontier_us);
    e.u64(s.clock_us);
    e.seq(&s.busy_until_us, |e, v| e.u64(*v));
    for v in s.blame {
        e.u64(v);
    }
    sim_latency(e, &s.totals);
}

fn de_netsim_state(d: &mut Dec<'_>) -> R<NetSimState> {
    Ok(NetSimState {
        rng: de_rng_words(d)?,
        frontier_us: d.u64()?,
        clock_us: d.u64()?,
        busy_until_us: d.seq(|d| d.u64())?,
        blame: [d.u64()?, d.u64()?, d.u64()?, d.u64()?],
        totals: de_sim_latency(d)?,
    })
}

pub fn driver_checkpoint(e: &mut Enc, c: &DriverCheckpoint) {
    let q = &c.queue;
    e.u32(q.lanes);
    e.u64(q.seq);
    e.u64(q.now_us);
    e.seq(&q.entries, |e, (at, seq, lane, ev)| {
        e.u64(*at);
        e.u64(*seq);
        e.u32(*lane);
        match ev {
            EvSnap::Arrive { client } => {
                e.u8(0);
                e.u32(*client);
            }
            EvSnap::Churn { idx } => {
                e.u8(1);
                e.u32(*idx);
            }
            EvSnap::Fault { idx } => {
                e.u8(2);
                e.u32(*idx);
            }
            EvSnap::FaultClear { idx } => {
                e.u8(3);
                e.u32(*idx);
            }
        }
    });
    e.seq(&c.issued, |e, v| e.u64(*v));
    e.opt(c.initiators.as_ref(), |e, ps| e.seq(ps, |e, p| e.u32(p.0)));
    e.seq(&c.client_rngs, rng_words);
    e.seq(&c.by_operator, |e, (label, h, s)| {
        e.str(label);
        hist(e, h);
        query_stats(e, s);
    });
    hist(e, &c.all_latencies);
    query_stats(e, &c.total);
    e.u64(c.queries_run);
    e.u64(c.first_start);
    e.u64(c.last_end);
    hist(e, &c.early.0);
    query_stats(e, &c.early.1);
    hist(e, &c.late.0);
    query_stats(e, &c.late.1);
    repair_totals(e, &c.repair);
    e.seq(&c.diagnostics, |e, s| e.str(s));
    netsim_state(e, &c.netsim);
}

pub fn de_driver_checkpoint(d: &mut Dec<'_>) -> R<DriverCheckpoint> {
    let lanes = d.u32()?;
    let seq = d.u64()?;
    let now_us = d.u64()?;
    let entries = d.seq(|d| {
        Ok((
            d.u64()?,
            d.u64()?,
            d.u32()?,
            match d.u8()? {
                0 => EvSnap::Arrive { client: d.u32()? },
                1 => EvSnap::Churn { idx: d.u32()? },
                2 => EvSnap::Fault { idx: d.u32()? },
                3 => EvSnap::FaultClear { idx: d.u32()? },
                _ => return Err(SnapError::Corrupt("event tag out of range")),
            },
        ))
    })?;
    Ok(DriverCheckpoint {
        queue: QueueState { lanes, seq, now_us, entries },
        issued: d.seq(|d| d.u64())?,
        initiators: d.opt(|d| d.seq(|d| Ok(PeerId(d.u32()?))))?,
        client_rngs: d.seq(|d| de_rng_words(d))?,
        by_operator: d.seq(|d| Ok((d.string()?, de_hist(d)?, de_query_stats(d)?)))?,
        all_latencies: de_hist(d)?,
        total: de_query_stats(d)?,
        queries_run: d.u64()?,
        first_start: d.u64()?,
        last_end: d.u64()?,
        early: (de_hist(d)?, de_query_stats(d)?),
        late: (de_hist(d)?, de_query_stats(d)?),
        repair: de_repair_totals(d)?,
        diagnostics: d.seq(|d| d.string())?,
        netsim: de_netsim_state(d)?,
    })
}

// ---------------------------------------------------------------------
// Scale checkpoint
// ---------------------------------------------------------------------

pub fn scale_checkpoint(e: &mut Enc, c: &ScaleCheckpoint) {
    e.u64(c.stop_us);
    e.seq(&c.pending, |e, ev| {
        e.u64(ev.at_us);
        e.u32(ev.qid);
        e.u32(ev.step);
        e.u32(ev.peer);
        e.u8(ev.kind);
        e.u32(ev.of);
    });
    e.seq(&c.busy, |e, v| e.u64(*v));
    e.seq(&c.qstate, |e, (expected, got, done)| {
        e.u32(*expected);
        e.u32(*got);
        e.u64(*done);
    });
    e.u64(c.events);
}

pub fn de_scale_checkpoint(d: &mut Dec<'_>) -> R<ScaleCheckpoint> {
    Ok(ScaleCheckpoint {
        stop_us: d.u64()?,
        pending: d.seq(|d| {
            Ok(ScaleEv {
                at_us: d.u64()?,
                qid: d.u32()?,
                step: d.u32()?,
                peer: d.u32()?,
                kind: d.u8()?,
                of: d.u32()?,
            })
        })?,
        busy: d.seq(|d| d.u64())?,
        qstate: d.seq(|d| Ok((d.u32()?, d.u32()?, d.u64()?)))?,
        events: d.u64()?,
    })
}

// ---------------------------------------------------------------------
// Publish stats
// ---------------------------------------------------------------------

pub fn publish_stats(e: &mut Enc, s: &sqo_storage::PublishStats) {
    e.usize(s.rows);
    e.usize(s.triples);
    e.usize(s.base_postings);
    e.usize(s.instance_gram_postings);
    e.usize(s.schema_gram_postings);
    e.usize(s.short_postings);
    e.u64(s.total_bytes);
}

pub fn de_publish_stats(d: &mut Dec<'_>) -> R<sqo_storage::PublishStats> {
    Ok(sqo_storage::PublishStats {
        rows: d.usize()?,
        triples: d.usize()?,
        base_postings: d.usize()?,
        instance_gram_postings: d.usize()?,
        schema_gram_postings: d.usize()?,
        short_postings: d.usize()?,
        total_bytes: d.u64()?,
    })
}
