//! The correctness bar of `sqo-snap`: checkpoint → serialize → restore →
//! run-to-end must be **byte-identical** to the run that never stopped —
//! across operators, cache on/off, and queue shard counts — and forks of
//! one warm world must be mutually byte-identical.

use sqo_cache::BrokerConfig;
use sqo_core::{EngineBuilder, SimilarityEngine};
use sqo_datasets::{bible_words, string_rows};
use sqo_sim::driver::EvSnap;
use sqo_sim::scale::{resume_serial, resume_sharded, run_serial, run_serial_until, ScalePhase};
use sqo_sim::{
    resume_driver, run_driver, run_driver_until, seed, Arrival, ChurnEvent, DriverConfig,
    DriverPhase, DriverReport, FaultEvent, FaultKind, FaultPlan, LatencyModel, LossModel,
    ScaleConfig, SimConfig, Topology,
};
use sqo_snap::{SnapError, Snapshot, SCHEMA_VERSION};

fn words() -> Vec<String> {
    bible_words(260, 7)
}

fn build(words: &[String]) -> SimilarityEngine {
    let rows = string_rows("word", words, "w");
    EngineBuilder::new().peers(64).q(2).seed(3).build_with_rows(&rows)
}

fn workload(cache: BrokerConfig, shards: usize) -> DriverConfig {
    DriverConfig {
        clients: 4,
        queries_per_client: 3,
        // Sparse arrivals (gaps ≫ even the slowest simjoin's ~136ms): the
        // system drains between queries, so quiesce boundaries — the only
        // points the driver can pause at — exist throughout the run, not
        // just at the end. Virtual time is free.
        arrival: Arrival::Poisson { mean_interarrival_us: 500_000 },
        sim: SimConfig {
            latency: LatencyModel::Uniform { min_us: 500, max_us: 2_000 },
            ..SimConfig::default()
        },
        // One mid-workload churn wave (epochs and dead peers must survive
        // the round trip) plus a far-future one: the latter keeps the
        // queue non-empty until every query has completed, so a quiesce
        // boundary at `stop_us` is guaranteed to exist.
        churn: vec![ChurnEvent::kill(150_000, 0.05), ChurnEvent::kill(10_000_000, 0.01)],
        cache,
        sticky_initiators: true,
        shards,
        seed: 7,
        ..DriverConfig::default()
    }
}

fn json(r: &DriverReport) -> String {
    serde_json::to_string(r).expect("report serializes")
}

/// The tentpole pin: pause at a quiesce boundary, freeze the whole world
/// to bytes, thaw in a fresh engine, resume — the final report matches
/// the uninterrupted run byte for byte. Pinned across the cache axis and
/// every queue shard count (the default mix already spans `similar`,
/// `topn`, and `simjoin`).
#[test]
fn paused_run_resumes_to_a_byte_identical_report() {
    let words = words();
    for cache in [BrokerConfig::default(), BrokerConfig::enabled()] {
        for shards in [1usize, 2, 8] {
            let cfg = workload(cache, shards);

            let mut uninterrupted = build(&words);
            let report = run_driver(&mut uninterrupted, "word", &words, &cfg);
            // Cut a third of the way into the measured span: with sparse
            // arrivals the driver quiesces between queries, so a boundary
            // at/after any mid-run instant exists.
            let stop = report.virtual_span_us / 3;
            let baseline = json(&report);

            let mut paused = build(&words);
            let ckpt = match run_driver_until(&mut paused, "word", &words, &cfg, stop) {
                DriverPhase::Paused(ck) => ck,
                DriverPhase::Done(_) => panic!("a cut at span/3 must land mid-run"),
            };
            assert!(ckpt.queries_run < 12, "the pause split the workload");
            assert!(ckpt.queries_run > 0, "some queries completed before the cut");

            let bytes = Snapshot::capture_paused(&paused, ckpt).to_bytes();
            let snap = Snapshot::from_bytes(&bytes).expect("artifact decodes");
            let mut thawed = snap.restore_engine(paused.config());
            let resumed = resume_driver(
                &mut thawed,
                "word",
                &words,
                &cfg,
                snap.driver.clone().expect("driver image rides along"),
            );
            assert_eq!(
                json(&resumed),
                baseline,
                "cache={:?} shards={shards}: resume diverged from the uninterrupted run",
                cache.any_enabled()
            );
        }
    }
}

/// The robustness extension of the tentpole pin: checkpoint **in the
/// middle of a fault plan** — after a crash wave, a partition wipe and a
/// revival, with a loss spike still in force and self-healing repair
/// enabled — and the resumed run must still be byte-identical to the
/// uninterrupted one. This exercises the fault/fault-clear event images,
/// the repair/phase/diagnostic checkpoint fields, and the resume-side
/// re-arming of an active loss spike.
#[test]
fn checkpoint_mid_fault_plan_resumes_byte_identically() {
    let words = words();
    let mut cfg = workload(BrokerConfig::default(), 2);
    cfg.repair = Some(sqo_overlay::ReplicationPolicy::default());
    cfg.faults = FaultPlan {
        events: vec![
            FaultEvent { at_us: 80_000, kind: FaultKind::Crash { fraction: 0.1 } },
            FaultEvent { at_us: 120_000, kind: FaultKind::WipePartition { part: 3 } },
            FaultEvent {
                at_us: 400_000,
                kind: FaultKind::LossSpike {
                    loss: LossModel { p: 0.1, timeout_us: 30_000, max_retries: 2 },
                    duration_us: 1_500_000,
                },
            },
            FaultEvent { at_us: 900_000, kind: FaultKind::Revive { fraction: 0.5 } },
        ],
    };

    let mut uninterrupted = build(&words);
    let report = run_driver(&mut uninterrupted, "word", &words, &cfg);
    let baseline = json(&report);
    assert!(report.repair.is_some(), "repair totals ride the report when configured");

    // Cut inside the loss spike's window [400ms, 1.9s): the checkpoint
    // must carry the pending fault-clear and the resume must re-install
    // the spike's loss model, not the baseline.
    let mut paused = build(&words);
    let ckpt = match run_driver_until(&mut paused, "word", &words, &cfg, 1_000_000) {
        DriverPhase::Paused(ck) => ck,
        DriverPhase::Done(_) => panic!("a cut at 1s must land mid-run"),
    };
    let pending_clear =
        ckpt.queue.entries.iter().any(|(_, _, _, ev)| matches!(ev, EvSnap::FaultClear { .. }));
    assert!(pending_clear, "the cut landed inside the loss spike");
    assert!(
        !ckpt
            .queue
            .entries
            .iter()
            .any(|(at, _, _, ev)| matches!(ev, EvSnap::Fault { .. }) && *at < 1_000_000),
        "all scripted faults before the cut have fired"
    );

    let bytes = Snapshot::capture_paused(&paused, ckpt).to_bytes();
    let snap = Snapshot::from_bytes(&bytes).expect("artifact decodes");
    let mut thawed = snap.restore_engine(paused.config());
    let resumed = resume_driver(
        &mut thawed,
        "word",
        &words,
        &cfg,
        snap.driver.clone().expect("driver image rides along"),
    );
    assert_eq!(json(&resumed), baseline, "mid-fault-plan resume diverged");
}

/// Warm one world, fork N runs off it: same-config forks are mutually
/// byte-identical, and forks re-seeded via the documented
/// `seed::derive(seed, FORK_STREAM, i)` rule actually diverge.
#[test]
fn forks_of_one_warm_world_are_mutually_byte_identical() {
    let words = words();
    let mut template = build(&words);
    // Warm it: a completed run advances the network RNG, counters, and
    // leaves a populated broker installed.
    let warm_cfg = workload(BrokerConfig::enabled(), 1);
    run_driver(&mut template, "word", &words, &warm_cfg);

    let bytes = Snapshot::capture(&template).to_bytes();
    let snap = Snapshot::from_bytes(&bytes).expect("artifact decodes");
    assert!(snap.world.broker.is_some(), "the warm broker is part of the world");

    let cfg = workload(BrokerConfig::enabled(), 2);
    let reports: Vec<String> = snap
        .fork(template.config(), 3)
        .iter_mut()
        .map(|engine| json(&run_driver(engine, "word", &words, &cfg)))
        .collect();
    assert_eq!(reports[0], reports[1], "same-config forks must agree");
    assert_eq!(reports[1], reports[2], "same-config forks must agree");

    let mut diverged = snap.restore_engine(template.config());
    let diverged_cfg = DriverConfig { seed: seed::derive(cfg.seed, seed::FORK_STREAM, 1), ..cfg };
    let other = json(&run_driver(&mut diverged, "word", &words, &diverged_cfg));
    assert_ne!(other, reports[0], "a re-seeded fork explores a different trajectory");
}

/// The scale core's image rides the same artifact: a paused serial run
/// resumes — serial, sharded, or threaded — onto the exact outcome of
/// the uninterrupted run, with the topology re-derived from the restored
/// world.
#[test]
fn scale_checkpoint_rides_the_artifact_and_resumes_exactly() {
    let words = words();
    let engine = build(&words);
    let topo = Topology::of_network(engine.network());
    let cfg = ScaleConfig { queries: 48, arrival_spread_us: 4_000, ..Default::default() };
    let (full, _) = run_serial(&topo, &cfg);

    let ckpt = match run_serial_until(&topo, &cfg, 2_000) {
        ScalePhase::Paused(ck) => ck,
        ScalePhase::Done(..) => panic!("a 2ms cut must land mid-run"),
    };
    let bytes = Snapshot::capture(&engine).with_scale(ckpt).to_bytes();
    let snap = Snapshot::from_bytes(&bytes).expect("artifact decodes");
    let ckpt = snap.scale.as_ref().expect("scale image rides along");

    let thawed = snap.restore_engine(engine.config());
    let topo2 = Topology::of_network(thawed.network());
    let (serial, _) = resume_serial(&topo2, &cfg, ckpt);
    assert_eq!(serial, full, "serial resume diverged");
    let sharded_cfg = ScaleConfig { shards: 2, threads: true, ..cfg };
    let (sharded, _) = resume_sharded(&topo2, &sharded_cfg, ckpt);
    assert_eq!(sharded, full, "threaded sharded resume diverged");
}

/// The artifact is a fixed point of decode→encode, and the envelope
/// refuses foreign or damaged input without panicking.
#[test]
fn envelope_is_versioned_and_decode_is_total() {
    let words = words();
    let engine = build(&words);
    let bytes = Snapshot::capture(&engine).to_bytes();

    let reencoded = Snapshot::from_bytes(&bytes).expect("decodes").to_bytes();
    assert_eq!(reencoded, bytes, "decode→encode is a fixed point");

    assert_eq!(Snapshot::from_bytes(b"").unwrap_err(), SnapError::BadMagic);
    assert_eq!(Snapshot::from_bytes(b"not a snapshot").unwrap_err(), SnapError::BadMagic);
    assert_eq!(SnapError::BadMagic.exit_code(), 3);

    let mut skewed = bytes.clone();
    skewed[4..8].copy_from_slice(&(SCHEMA_VERSION + 1).to_le_bytes());
    let err = Snapshot::from_bytes(&skewed).unwrap_err();
    assert_eq!(
        err,
        SnapError::SchemaMismatch { found: SCHEMA_VERSION + 1, expected: SCHEMA_VERSION }
    );
    assert_eq!(err.exit_code(), 3, "parity with the bench regress gate's EXIT_MISMATCH");

    // Truncations and trailing garbage fail with an error, never a panic.
    for cut in [bytes.len() / 2, bytes.len() - 3] {
        assert!(Snapshot::from_bytes(&bytes[..cut]).is_err(), "cut at {cut} must fail");
    }
    let mut trailing = bytes.clone();
    trailing.push(0);
    assert!(matches!(trailing, ref b if Snapshot::from_bytes(b).is_err()));
}

/// A restored world continues the original's RNG stream and counters: the
/// next queries on both engines are identical, which is what makes warm
/// templates equivalent to cold rebuilds.
#[test]
fn restored_world_continues_the_original_stream() {
    let words = words();
    let mut a = build(&words);
    let snap = Snapshot::capture(&a);
    let mut b = snap.restore_engine(a.config());

    let cfg = workload(BrokerConfig::default(), 1);
    let ra = json(&run_driver(&mut a, "word", &words, &cfg));
    let rb = json(&run_driver(&mut b, "word", &words, &cfg));
    assert_eq!(ra, rb, "capture is an observationally silent operation");
}
