//! Property tests for the vertical storage scheme: key-family discipline,
//! posting inventories, and object reassembly.

use proptest::prelude::*;
use sqo_storage::keys;
use sqo_storage::posting::{BaseKind, Object, Posting};
use sqo_storage::publish::{postings_for_rows, postings_for_triple, PublishConfig};
use sqo_storage::triple::{Row, Triple, Value};
use sqo_strsim::qgram::qgram_count;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        "[a-z ]{0,12}".prop_map(Value::from),
        any::<i64>().prop_map(Value::Int),
        (-1e9f64..1e9).prop_map(Value::Float),
    ]
}

proptest! {
    /// Every posting's key starts with the tag of the family it belongs to,
    /// and instance postings' keys extend the attribute's scan prefix.
    #[test]
    fn posting_keys_respect_families(
        oid in "[a-z]{1,8}",
        attr in "[a-z]{1,8}",
        value in value_strategy(),
        q in 2usize..5,
    ) {
        let t = Triple::new(oid.clone(), attr.clone(), value);
        let cfg = PublishConfig { q, ..PublishConfig::default() };
        for (key, posting) in postings_for_triple(&t, &cfg) {
            match &posting {
                Posting::Base { kind: BaseKind::Oid, .. } => {
                    prop_assert_eq!(&key, &keys::oid_key(&oid));
                }
                Posting::Base { kind: BaseKind::AttrValue, triple } => {
                    prop_assert!(keys::attr_scan_prefix(&attr).is_prefix_of(&key));
                    prop_assert_eq!(&key, &keys::attr_value_key(&attr, &triple.value));
                }
                Posting::Base { kind: BaseKind::Value, triple } => {
                    prop_assert_eq!(&key, &keys::value_key(&triple.value));
                }
                Posting::InstanceGram { gram, .. } => {
                    prop_assert_eq!(&key, &keys::instance_gram_key(&attr, gram));
                    prop_assert_eq!(gram.chars().count(), q);
                }
                Posting::SchemaGram { gram, .. } => {
                    prop_assert_eq!(&key, &keys::schema_gram_key(gram));
                    prop_assert_eq!(gram.chars().count(), q);
                }
                Posting::ShortValue { triple } => {
                    let s = triple.value.as_str().expect("short postings are strings");
                    prop_assert!(s.chars().count() < q);
                    prop_assert!(keys::short_value_prefix(&attr).is_prefix_of(&key));
                }
                Posting::ShortAttr { .. } => {
                    prop_assert!(attr.chars().count() < q);
                    prop_assert!(keys::short_attr_prefix().is_prefix_of(&key));
                }
            }
        }
    }

    /// Posting counts follow the closed-form inventory: 3 base postings
    /// (2 without the keyword index), one instance gram per value q-gram,
    /// one schema gram per attr-name q-gram, short-family fallbacks
    /// otherwise.
    #[test]
    fn posting_inventory_formula(
        oid in "[a-z]{1,6}",
        attr in "[a-z]{1,9}",
        s in "[a-z]{0,15}",
        q in 2usize..4,
        keyword in any::<bool>(),
    ) {
        let t = Triple::new(oid, attr.clone(), Value::from(s.clone()));
        let cfg = PublishConfig { q, keyword_index: keyword, ..PublishConfig::default() };
        let ps = postings_for_triple(&t, &cfg);
        let base = ps.iter().filter(|(_, p)| matches!(p, Posting::Base { .. })).count();
        prop_assert_eq!(base, if keyword { 3 } else { 2 });
        let igrams = ps.iter().filter(|(_, p)| matches!(p, Posting::InstanceGram { .. })).count();
        let shorts = ps.iter().filter(|(_, p)| matches!(p, Posting::ShortValue { .. })).count();
        let n = s.chars().count();
        if n >= q {
            prop_assert_eq!(igrams, qgram_count(n, q));
            prop_assert_eq!(shorts, 0);
        } else {
            prop_assert_eq!(igrams, 0);
            prop_assert_eq!(shorts, 1);
        }
        let sgrams = ps.iter().filter(|(_, p)| matches!(p, Posting::SchemaGram { .. })).count();
        let na = attr.chars().count();
        prop_assert_eq!(sgrams, qgram_count(na, q));
    }

    /// Object reassembly from oid postings is lossless for a row's fields
    /// (up to deduplication of identical (attr, value) pairs).
    #[test]
    fn object_roundtrip(
        oid in "[a-z]{1,6}",
        fields in prop::collection::vec(("[a-z]{1,6}", value_strategy()), 1..8),
    ) {
        let row = Row::new(oid.clone(), fields.clone());
        let cfg = PublishConfig::default();
        let (all, _) = postings_for_rows(&[row], &cfg);
        let oid_postings: Vec<Posting> = all
            .into_iter()
            .filter(|(k, _)| keys::oid_key(&oid).is_prefix_of(k))
            .map(|(_, p)| p)
            .collect();
        let obj = Object::from_postings(&oid, &oid_postings);
        for (attr, value) in &fields {
            prop_assert!(
                obj.fields.iter().any(|(a, v)| a.as_str() == attr && v == value),
                "field ({attr}, {value:?}) lost in reassembly"
            );
        }
        // No foreign fields appear.
        for (a, v) in &obj.fields {
            prop_assert!(fields.iter().any(|(fa, fv)| fa == a.as_str() && fv == v));
        }
    }

    /// Range keys bracket exactly the keys of in-range values.
    #[test]
    fn range_keys_bracket_values(
        attr in "[a-z]{1,6}",
        mut bounds in prop::collection::vec(any::<i64>(), 2),
        probe in any::<i64>(),
    ) {
        bounds.sort_unstable();
        let (lo, hi) = (bounds[0], bounds[1]);
        let (klo, khi) = keys::attr_value_range(&attr, &Value::Int(lo), &Value::Int(hi));
        let kp = keys::attr_value_key(&attr, &Value::Int(probe));
        let inside = lo <= probe && probe <= hi;
        prop_assert_eq!(inside, klo <= kp && kp <= khi);
    }
}
