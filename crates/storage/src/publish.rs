//! Publication pipeline: rows → triples → keyed index postings.
//!
//! §4: *"instead of inserting `key(Ai#vi) → (oid, Ai, vi)` one time, we
//! insert `key(Ai#q_ij) → (oid, Ai, q_ij)` for each q-gram of `vi`, and
//! `key(q_Aj) → (oid, q_Aj, vi)` for each q-gram of `Ai`. This increases
//! the storage overhead but enables efficient querying on q-grams."*
//!
//! The paper's §8 conclusion asserts the overhead is "negligible on modern
//! computers" and "linear in the number of attribute columns" — the
//! `storage_overhead` bench regenerates that accounting from
//! [`PublishStats`].

use crate::keys;
use crate::posting::{BaseKind, Posting};
use crate::triple::{Row, Triple, Value};
use sqo_overlay::key::Key;
use sqo_overlay::peer::Item;
use sqo_strsim::qgram::qgrams;
use std::sync::Arc;

/// Indexing parameters.
#[derive(Debug, Clone)]
pub struct PublishConfig {
    /// q-gram length (the paper's experiments use small q; default 3).
    pub q: usize,
    /// Maintain the keyword index `key(v)` (family 3). The similarity
    /// operators do not need it; it serves "any attribute = v" queries.
    pub keyword_index: bool,
    /// Maintain instance-level gram postings (family 4 + short-value 6).
    pub instance_grams: bool,
    /// Maintain schema-level gram postings (family 5 + short-attr 7).
    pub schema_grams: bool,
    /// Ship the complete value inside every instance-gram posting (§4's
    /// closing optimization suggestion): larger postings, but `Similar` can
    /// verify candidates before fetching any object.
    pub grams_carry_value: bool,
}

impl Default for PublishConfig {
    fn default() -> Self {
        Self {
            q: 3,
            keyword_index: true,
            instance_grams: true,
            schema_grams: true,
            grams_carry_value: false,
        }
    }
}

/// Storage-overhead accounting for a publication batch.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PublishStats {
    pub rows: usize,
    pub triples: usize,
    pub base_postings: usize,
    pub instance_gram_postings: usize,
    pub schema_gram_postings: usize,
    pub short_postings: usize,
    pub total_bytes: u64,
}

impl PublishStats {
    pub fn total_postings(&self) -> usize {
        self.base_postings
            + self.instance_gram_postings
            + self.schema_gram_postings
            + self.short_postings
    }

    /// Blow-up factor relative to storing each triple exactly once.
    pub fn overhead_factor(&self) -> f64 {
        if self.triples == 0 {
            return 0.0;
        }
        self.total_postings() as f64 / self.triples as f64
    }
}

/// All (key, posting) pairs for one triple.
pub fn postings_for_triple(triple: &Triple, cfg: &PublishConfig) -> Vec<(Key, Posting)> {
    let tr = Arc::new(triple.clone());
    let mut out = Vec::new();

    // The three base insertions of §3.
    out.push((keys::oid_key(&tr.oid), Posting::Base { kind: BaseKind::Oid, triple: tr.clone() }));
    out.push((
        keys::attr_value_key(tr.attr.as_str(), &tr.value),
        Posting::Base { kind: BaseKind::AttrValue, triple: tr.clone() },
    ));
    if cfg.keyword_index {
        out.push((
            keys::value_key(&tr.value),
            Posting::Base { kind: BaseKind::Value, triple: tr.clone() },
        ));
    }

    // Instance-level grams for string values (§4).
    if cfg.instance_grams {
        if let Value::Str(s) = &tr.value {
            let grams = qgrams(s, cfg.q);
            if grams.is_empty() {
                // |v| < q: the gram index cannot see it; the short-value
                // family keeps similarity search complete.
                out.push((
                    keys::short_value_key(tr.attr.as_str(), s),
                    Posting::ShortValue { triple: tr.clone() },
                ));
            } else {
                for g in grams {
                    out.push((
                        keys::instance_gram_key(tr.attr.as_str(), &g.gram),
                        Posting::InstanceGram {
                            triple: tr.clone(),
                            gram: g.gram,
                            pos: g.pos,
                            carries_value: cfg.grams_carry_value,
                        },
                    ));
                }
            }
        }
    }

    // Schema-level grams of the attribute name (§4).
    if cfg.schema_grams {
        let name = tr.attr.as_str();
        let grams = qgrams(name, cfg.q);
        if grams.is_empty() {
            out.push((keys::short_attr_key(name), Posting::ShortAttr { triple: tr.clone() }));
        } else {
            for g in grams {
                out.push((
                    keys::schema_gram_key(&g.gram),
                    Posting::SchemaGram { triple: tr.clone(), gram: g.gram, pos: g.pos },
                ));
            }
        }
    }

    out
}

/// Postings for a batch of rows, with accounting.
pub fn postings_for_rows(rows: &[Row], cfg: &PublishConfig) -> (Vec<(Key, Posting)>, PublishStats) {
    let mut stats = PublishStats { rows: rows.len(), ..Default::default() };
    // Typical fan-out: 3 base + ~len grams per string triple.
    let mut out = Vec::with_capacity(rows.len() * 8);
    for row in rows {
        for triple in row.triples() {
            stats.triples += 1;
            for (key, posting) in postings_for_triple(&triple, cfg) {
                match &posting {
                    Posting::Base { .. } => stats.base_postings += 1,
                    Posting::InstanceGram { .. } => stats.instance_gram_postings += 1,
                    Posting::SchemaGram { .. } => stats.schema_gram_postings += 1,
                    Posting::ShortValue { .. } | Posting::ShortAttr { .. } => {
                        stats.short_postings += 1
                    }
                }
                stats.total_bytes += posting.size_bytes() as u64;
                out.push((key, posting));
            }
        }
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::Row;

    fn cfg() -> PublishConfig {
        PublishConfig::default()
    }

    #[test]
    fn string_triple_posting_inventory() {
        let t = Triple::new("car:1", "name", "bmw320");
        let ps = postings_for_triple(&t, &cfg());
        let bases = ps.iter().filter(|(_, p)| matches!(p, Posting::Base { .. })).count();
        let igrams = ps.iter().filter(|(_, p)| matches!(p, Posting::InstanceGram { .. })).count();
        let sgrams = ps.iter().filter(|(_, p)| matches!(p, Posting::SchemaGram { .. })).count();
        assert_eq!(bases, 3, "the three §3 insertions");
        assert_eq!(igrams, "bmw320".len() - 3 + 1, "one per value q-gram");
        assert_eq!(sgrams, "name".len() - 3 + 1, "one per attr-name q-gram");
    }

    #[test]
    fn numeric_triple_has_no_instance_grams() {
        let t = Triple::new("car:1", "horsepower", 190);
        let ps = postings_for_triple(&t, &cfg());
        assert!(ps.iter().all(|(_, p)| !matches!(p, Posting::InstanceGram { .. })));
        assert!(ps.iter().all(|(_, p)| !matches!(p, Posting::ShortValue { .. })));
        // Schema grams still exist: attribute names are strings.
        assert!(ps.iter().any(|(_, p)| matches!(p, Posting::SchemaGram { .. })));
    }

    #[test]
    fn short_value_goes_to_side_family() {
        let t = Triple::new("o", "name", "ab"); // |v| = 2 < q = 3
        let ps = postings_for_triple(&t, &cfg());
        assert!(ps.iter().any(|(_, p)| matches!(p, Posting::ShortValue { .. })));
        assert!(ps.iter().all(|(_, p)| !matches!(p, Posting::InstanceGram { .. })));
    }

    #[test]
    fn short_attr_goes_to_side_family() {
        let t = Triple::new("o", "hp", 10); // |A| = 2 < q = 3
        let ps = postings_for_triple(&t, &cfg());
        assert!(ps.iter().any(|(_, p)| matches!(p, Posting::ShortAttr { .. })));
        assert!(ps.iter().all(|(_, p)| !matches!(p, Posting::SchemaGram { .. })));
    }

    #[test]
    fn disabling_families_removes_their_postings() {
        let t = Triple::new("o", "name", "abcdef");
        let c = PublishConfig {
            keyword_index: false,
            instance_grams: false,
            schema_grams: false,
            ..cfg()
        };
        let ps = postings_for_triple(&t, &c);
        assert_eq!(ps.len(), 2, "only oid + attr-value base postings remain");
    }

    #[test]
    fn batch_stats_add_up() {
        let rows = vec![
            Row::new("car:1", [("name", Value::from("bmw")), ("hp", Value::from(190))]),
            Row::new("car:2", [("name", Value::from("audi a4"))]),
        ];
        let (ps, stats) = postings_for_rows(&rows, &cfg());
        assert_eq!(stats.rows, 2);
        assert_eq!(stats.triples, 3);
        assert_eq!(stats.total_postings(), ps.len());
        assert!(stats.overhead_factor() > 3.0, "grams must add overhead");
        assert_eq!(stats.total_bytes, ps.iter().map(|(_, p)| p.size_bytes() as u64).sum::<u64>());
    }

    #[test]
    fn overhead_is_linear_in_attribute_count() {
        // The §8 claim: postings grow linearly with the number of columns.
        let mk = |n: usize| {
            let fields: Vec<(String, Value)> =
                (0..n).map(|i| (format!("attr{i:02}"), Value::from("valstring"))).collect();
            let rows = vec![Row::new("o", fields)];
            postings_for_rows(&rows, &cfg()).1.total_postings()
        };
        let p2 = mk(2);
        let p4 = mk(4);
        let p8 = mk(8);
        assert_eq!(p4 - p2, (p8 - p4) / 2, "per-column posting count is constant");
    }
}
