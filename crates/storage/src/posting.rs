//! Index postings — what actually gets stored in the overlay.
//!
//! All postings referencing the same logical triple share one allocation
//! (`TripleRef = Arc<Triple>`); a q-gram posting adds only the gram text and
//! its position. Size accounting follows the paper's wire format: an
//! instance-gram posting ships `(oid, A, q)` (Algorithm 2 reads the gram
//! from component 3), a schema-gram posting ships `(oid, q_A, v)` (the gram
//! in component 2, the full value retained).

use crate::triple::{Triple, TripleRef, Value};
use sqo_overlay::peer::Item;

/// Which base index a base posting belongs to (useful for storage-overhead
/// accounting; retrieval tells them apart by key family already).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseKind {
    Oid,
    AttrValue,
    Value,
}

/// One stored index entry.
#[derive(Debug, Clone)]
pub enum Posting {
    /// Full triple under `key(oid)`, `key(A#v)` or `key(v)`.
    Base { kind: BaseKind, triple: TripleRef },
    /// Instance-level gram posting under `key(A # gram)`: conceptually
    /// `(oid, A, gram)` plus the positional-filter payload. With
    /// `carries_value` the posting additionally ships the complete value
    /// (§4's "storing complete strings together with q-grams" suggestion:
    /// bigger postings, but candidates can be verified before any object
    /// fetch).
    InstanceGram { triple: TripleRef, gram: String, pos: u32, carries_value: bool },
    /// Schema-level gram posting under `key(gram)`: conceptually
    /// `(oid, gram_of_A, v)` plus the position of the gram in the name.
    SchemaGram { triple: TripleRef, gram: String, pos: u32 },
    /// String value shorter than q, under the short-value family.
    ShortValue { triple: TripleRef },
    /// Attribute name shorter than q, under the short-attr family.
    ShortAttr { triple: TripleRef },
}

impl Posting {
    /// The underlying triple.
    pub fn triple(&self) -> &TripleRef {
        match self {
            Posting::Base { triple, .. }
            | Posting::InstanceGram { triple, .. }
            | Posting::SchemaGram { triple, .. }
            | Posting::ShortValue { triple }
            | Posting::ShortAttr { triple } => triple,
        }
    }

    /// Object id of the underlying triple.
    pub fn oid(&self) -> &str {
        &self.triple().oid
    }

    /// Length in characters of the string this posting's gram was drawn
    /// from (the `l(q')` of Algorithm 2's length filter): the value for
    /// instance grams, the attribute name for schema grams.
    pub fn source_len(&self) -> Option<usize> {
        match self {
            Posting::InstanceGram { triple, .. } => {
                triple.value.as_str().map(|s| s.chars().count())
            }
            Posting::SchemaGram { triple, .. } => Some(triple.attr.as_str().chars().count()),
            _ => None,
        }
    }

    /// Convenience: the base triple if this is a base posting.
    pub fn as_base(&self) -> Option<&Triple> {
        match self {
            Posting::Base { triple, .. } => Some(triple),
            _ => None,
        }
    }
}

impl Item for Posting {
    fn size_bytes(&self) -> usize {
        match self {
            Posting::Base { triple, .. } => triple.repr_len(),
            // (oid, A, q) + pos [+ the full value when carried]
            Posting::InstanceGram { triple, gram, carries_value, .. } => {
                triple.oid.len()
                    + triple.attr.as_str().len()
                    + gram.len()
                    + 4
                    + 12
                    + if *carries_value { triple.value.repr_len() } else { 0 }
            }
            // (oid, q_A, v) + pos
            Posting::SchemaGram { triple, gram, .. } => {
                triple.oid.len() + gram.len() + triple.value.repr_len() + 4 + 12
            }
            Posting::ShortValue { triple } | Posting::ShortAttr { triple } => triple.repr_len(),
        }
    }
}

/// Equality on the logical content (used by tests; `Arc` pointers differ).
impl PartialEq for Posting {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Posting::Base { kind: k1, triple: t1 }, Posting::Base { kind: k2, triple: t2 }) => {
                k1 == k2 && t1 == t2
            }
            (
                Posting::InstanceGram { triple: t1, gram: g1, pos: p1, .. },
                Posting::InstanceGram { triple: t2, gram: g2, pos: p2, .. },
            )
            | (
                Posting::SchemaGram { triple: t1, gram: g1, pos: p1 },
                Posting::SchemaGram { triple: t2, gram: g2, pos: p2 },
            ) => t1 == t2 && g1 == g2 && p1 == p2,
            (Posting::ShortValue { triple: t1 }, Posting::ShortValue { triple: t2 })
            | (Posting::ShortAttr { triple: t1 }, Posting::ShortAttr { triple: t2 }) => t1 == t2,
            _ => false,
        }
    }
}

/// A reassembled horizontal tuple: an oid with all its attribute values,
/// rebuilt from the base triples stored under `key(oid)` (the "build
/// complete object o from T′" step of Algorithm 2).
#[derive(Debug, Clone, PartialEq)]
pub struct Object {
    pub oid: String,
    pub fields: Vec<(crate::triple::AttrName, Value)>,
}

impl Object {
    /// Assemble from oid-index postings. Postings for other oids are
    /// ignored; duplicate (attr, value) pairs (replica returns) collapse.
    pub fn from_postings(oid: &str, postings: &[Posting]) -> Object {
        let mut fields: Vec<(crate::triple::AttrName, Value)> = Vec::new();
        for p in postings {
            if let Posting::Base { triple, .. } = p {
                if triple.oid == oid
                    && !fields.iter().any(|(a, v)| *a == triple.attr && *v == triple.value)
                {
                    fields.push((triple.attr.clone(), triple.value.clone()));
                }
            }
        }
        fields.sort_by(|(a, _), (b, _)| a.cmp(b));
        Object { oid: oid.to_string(), fields }
    }

    /// First value of attribute `attr`.
    pub fn get(&self, attr: &str) -> Option<&Value> {
        self.fields.iter().find(|(a, _)| a.as_str() == attr).map(|(_, v)| v)
    }

    /// Serialized size estimate.
    pub fn repr_len(&self) -> usize {
        self.oid.len()
            + self.fields.iter().map(|(a, v)| a.as_str().len() + v.repr_len() + 8).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::Triple;
    use std::sync::Arc;

    fn t(oid: &str, attr: &str, v: impl Into<Value>) -> TripleRef {
        Arc::new(Triple::new(oid, attr, v))
    }

    #[test]
    fn posting_sizes_reflect_payload() {
        let tr = t("car:1", "name", "BMW 320d");
        let base = Posting::Base { kind: BaseKind::Oid, triple: tr.clone() };
        assert_eq!(base.size_bytes(), tr.repr_len());
        let gram = Posting::InstanceGram {
            triple: tr.clone(),
            gram: "320".into(),
            pos: 4,
            carries_value: false,
        };
        // oid(5) + attr(4) + gram(3) + 4 + 12
        assert_eq!(gram.size_bytes(), 5 + 4 + 3 + 4 + 12);
        let carrying = Posting::InstanceGram {
            triple: tr.clone(),
            gram: "320".into(),
            pos: 4,
            carries_value: true,
        };
        // + the full value ("BMW 320d" = 8 bytes)
        assert_eq!(carrying.size_bytes(), gram.size_bytes() + 8);
        let sg = Posting::SchemaGram { triple: tr.clone(), gram: "nam".into(), pos: 0 };
        // oid(5) + gram(3) + value(8) + 4 + 12
        assert_eq!(sg.size_bytes(), 5 + 3 + 8 + 4 + 12);
    }

    #[test]
    fn source_len_is_value_for_instance_and_name_for_schema() {
        let tr = t("o", "name", "abcdef");
        let ig = Posting::InstanceGram {
            triple: tr.clone(),
            gram: "abc".into(),
            pos: 0,
            carries_value: false,
        };
        assert_eq!(ig.source_len(), Some(6));
        let sg = Posting::SchemaGram { triple: tr.clone(), gram: "nam".into(), pos: 0 };
        assert_eq!(sg.source_len(), Some(4));
        let b = Posting::Base { kind: BaseKind::Oid, triple: tr };
        assert_eq!(b.source_len(), None);
    }

    #[test]
    fn object_assembly_dedups_and_filters() {
        let ps = vec![
            Posting::Base { kind: BaseKind::Oid, triple: t("car:1", "name", "BMW") },
            Posting::Base { kind: BaseKind::Oid, triple: t("car:1", "hp", 190) },
            Posting::Base { kind: BaseKind::Oid, triple: t("car:1", "name", "BMW") }, // replica dup
            Posting::Base { kind: BaseKind::Oid, triple: t("car:2", "name", "Audi") }, // other oid
        ];
        let o = Object::from_postings("car:1", &ps);
        assert_eq!(o.fields.len(), 2);
        assert_eq!(o.get("name"), Some(&Value::from("BMW")));
        assert_eq!(o.get("hp"), Some(&Value::from(190)));
        assert_eq!(o.get("missing"), None);
    }

    #[test]
    fn multivalued_attributes_survive_assembly() {
        // The vertical scheme allows several triples with the same attribute.
        let ps = vec![
            Posting::Base { kind: BaseKind::Oid, triple: t("o", "tag", "red") },
            Posting::Base { kind: BaseKind::Oid, triple: t("o", "tag", "fast") },
        ];
        let o = Object::from_postings("o", &ps);
        assert_eq!(o.fields.len(), 2);
    }
}
