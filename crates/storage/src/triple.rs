//! The vertical data model: triples.
//!
//! §3 of the paper: each tuple `(oid, v1, …, vn)` of a relation
//! `R(A1, …, An)` is decomposed into `n` triples `(oid, A1, v1), …,
//! (oid, An, vn)`, where `oid` is a unique value (e.g. a URI) and attribute
//! names may carry a namespace prefix `ns` distinguishing relations. Null
//! values are simply not represented. The scheme is self-describing — no
//! global data dictionary — and users may extend a tuple's schema by adding
//! triples.

use std::fmt;
use std::sync::Arc;

/// Attribute name, optionally namespace-qualified (`ns:name`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrName(String);

impl AttrName {
    pub fn new(name: impl Into<String>) -> Self {
        Self(name.into())
    }

    /// Full canonical form, `ns:name` or bare `name`.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The namespace prefix, if any.
    pub fn namespace(&self) -> Option<&str> {
        self.0.split_once(':').map(|(ns, _)| ns)
    }

    /// The local part (after the namespace prefix).
    pub fn local(&self) -> &str {
        self.0.split_once(':').map_or(&self.0, |(_, l)| l)
    }
}

impl fmt::Display for AttrName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for AttrName {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for AttrName {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Attribute values: strings, integers, floats. (The paper's `dist` measure
/// is edit distance for strings, Euclidean distance for numerics.)
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Int(i64),
    Float(f64),
}

impl Value {
    /// String content if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric view: ints widen to floats.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Str(_) => None,
        }
    }

    /// Approximate serialized size in bytes (data-volume accounting).
    pub fn repr_len(&self) -> usize {
        match self {
            Value::Str(s) => s.len(),
            Value::Int(_) | Value::Float(_) => 8,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => f.write_str(s),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

/// One vertical fact: `(oid, attribute, value)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Triple {
    pub oid: String,
    pub attr: AttrName,
    pub value: Value,
}

impl Triple {
    pub fn new(oid: impl Into<String>, attr: impl Into<AttrName>, value: impl Into<Value>) -> Self {
        Self { oid: oid.into(), attr: attr.into(), value: value.into() }
    }

    /// Serialized size estimate (oid + attr + value + framing).
    pub fn repr_len(&self) -> usize {
        self.oid.len() + self.attr.as_str().len() + self.value.repr_len() + 12
    }
}

/// Shared-ownership triple, as stored in index postings.
pub type TripleRef = Arc<Triple>;

/// A horizontal row to be published: an oid plus its attribute/value pairs.
/// Convenience constructor for examples, tests and dataset loaders.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    pub oid: String,
    pub fields: Vec<(AttrName, Value)>,
}

impl Row {
    pub fn new<A, V, I>(oid: impl Into<String>, fields: I) -> Self
    where
        A: Into<AttrName>,
        V: Into<Value>,
        I: IntoIterator<Item = (A, V)>,
    {
        Self {
            oid: oid.into(),
            fields: fields.into_iter().map(|(a, v)| (a.into(), v.into())).collect(),
        }
    }

    /// The row as triples (the §3 decomposition).
    pub fn triples(&self) -> impl Iterator<Item = Triple> + '_ {
        self.fields.iter().map(|(a, v)| Triple {
            oid: self.oid.clone(),
            attr: a.clone(),
            value: v.clone(),
        })
    }

    /// Value of the first field named `attr`, if present.
    pub fn get(&self, attr: &str) -> Option<&Value> {
        self.fields.iter().find(|(a, _)| a.as_str() == attr).map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_namespace_split() {
        let a = AttrName::new("cars:price");
        assert_eq!(a.namespace(), Some("cars"));
        assert_eq!(a.local(), "price");
        let b = AttrName::new("price");
        assert_eq!(b.namespace(), None);
        assert_eq!(b.local(), "price");
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(2.5), Value::Float(2.5));
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::Str("s".into()).as_float(), None);
        assert_eq!(Value::Str("s".into()).as_str(), Some("s"));
    }

    #[test]
    fn row_decomposes_into_triples() {
        let row = Row::new("car:1", [("name", Value::from("BMW")), ("hp", Value::from(190))]);
        let ts: Vec<Triple> = row.triples().collect();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0], Triple::new("car:1", "name", "BMW"));
        assert_eq!(ts[1], Triple::new("car:1", "hp", 190));
        assert_eq!(row.get("hp"), Some(&Value::Int(190)));
        assert_eq!(row.get("missing"), None);
    }

    #[test]
    fn repr_len_counts_components() {
        let t = Triple::new("o", "a", "vvv");
        assert_eq!(t.repr_len(), 1 + 1 + 3 + 12);
        let n = Triple::new("o", "a", 5);
        assert_eq!(n.repr_len(), 1 + 1 + 8 + 12);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::from("x").to_string(), "x");
        assert_eq!(Value::from(7).to_string(), "7");
        assert_eq!(AttrName::new("ns:n").to_string(), "ns:n");
    }
}
