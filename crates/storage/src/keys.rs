//! Key derivation for the vertical storage scheme.
//!
//! §3/§4 of the paper: every triple `(oid, A, v)` is inserted under several
//! keys —
//!
//! 1. `key(oid)` — object lookups (reassembling complete tuples),
//! 2. `key(A # v)` — attribute selections and range queries,
//! 3. `key(v)` — keyword-like queries ("any attribute = v"),
//! 4. `key(A # q)` for every q-gram `q` of a **string** value `v` —
//!    instance-level similarity probes,
//! 5. `key(q_A)` for every q-gram `q_A` of the attribute **name** —
//!    schema-level similarity probes.
//!
//! Each family is prefixed with a one-byte *index tag* so the families
//! occupy disjoint subtries (without it, `key(oid)` and `key(v)` of equal
//! strings would collide). Within a family, keys are order- and
//! prefix-preserving, which is what range scans and prefix fan-outs rely on.
//! Components are separated by a `0x00` byte so that `hp#...` and `hpx#...`
//! ranges cannot interleave.
//!
//! Two auxiliary families (tags 6 and 7) index strings *shorter than q*,
//! which produce no q-grams; the `Similar` operator scans them directly when
//! the query's match-length window dips below `q` (completeness — see
//! `sqo-core::similar`).

use crate::triple::Value;
use sqo_overlay::hash::{hash_f64, hash_i64, hash_str};
use sqo_overlay::key::Key;

/// Index-family tags (first byte of every key).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum IndexFamily {
    /// `key(oid)` → base triple.
    Oid = 0x01,
    /// `key(A # v)` → base triple.
    AttrValue = 0x02,
    /// `key(v)` → base triple (keyword index).
    Value = 0x03,
    /// `key(A # q-gram(v))` → gram posting (instance level).
    InstanceGram = 0x04,
    /// `key(q-gram(A))` → gram posting (schema level).
    SchemaGram = 0x05,
    /// `key(A # v)` for string values with `|v| < q`.
    ShortValue = 0x06,
    /// `key(A)` for attribute names with `|A| < q`.
    ShortAttr = 0x07,
}

/// Value-type tags inside the value component of a key, keeping the three
/// value domains (ints, floats, strings) in disjoint, internally ordered
/// subranges.
const VT_INT: u8 = 0x01;
const VT_FLOAT: u8 = 0x02;
const VT_STR: u8 = 0x03;

fn tag_key(family: IndexFamily) -> Key {
    Key::from_bytes(&[family as u8])
}

/// Order-preserving key fragment for a value.
pub fn value_fragment(v: &Value) -> Key {
    match v {
        Value::Int(i) => Key::from_bytes(&[VT_INT]).concat(&hash_i64(*i)),
        Value::Float(f) => Key::from_bytes(&[VT_FLOAT]).concat(&hash_f64(*f)),
        Value::Str(s) => Key::from_bytes(&[VT_STR]).concat(&hash_str(s)),
    }
}

/// Key fragment for an attribute name, `0x00`-terminated.
fn attr_fragment(attr: &str) -> Key {
    hash_str(attr).concat(&Key::from_bytes(&[0x00]))
}

// ---------------------------------------------------------------------
// Family 1: oid index
// ---------------------------------------------------------------------

/// `key(oid)`.
pub fn oid_key(oid: &str) -> Key {
    tag_key(IndexFamily::Oid).concat(&hash_str(oid))
}

// ---------------------------------------------------------------------
// Family 2: attribute-value index
// ---------------------------------------------------------------------

/// `key(A # v)`.
pub fn attr_value_key(attr: &str, v: &Value) -> Key {
    tag_key(IndexFamily::AttrValue).concat(&attr_fragment(attr)).concat(&value_fragment(v))
}

/// Prefix covering **all** values of attribute `A` — the scan the
/// schema-level operations and full-attribute fetches (similarity join left
/// sides) use.
pub fn attr_scan_prefix(attr: &str) -> Key {
    tag_key(IndexFamily::AttrValue).concat(&attr_fragment(attr))
}

/// Inclusive key range for `v ∈ [lo, hi]` of attribute `A`. `lo` and `hi`
/// must be of the same value kind.
pub fn attr_value_range(attr: &str, lo: &Value, hi: &Value) -> (Key, Key) {
    let base = attr_scan_prefix(attr);
    let klo = base.concat(&value_fragment(lo));
    // Extend the upper bound so that string keys *starting with* hi are
    // included (range semantics on truncated string keys), by appending
    // 1-bits up to the string-key capacity.
    let mut khi = base.concat(&value_fragment(hi));
    if matches!(hi, Value::Str(_)) {
        for _ in 0..8 {
            khi.push_bit(true);
        }
    }
    (klo, khi)
}

// ---------------------------------------------------------------------
// Family 3: keyword (value) index
// ---------------------------------------------------------------------

/// `key(v)` — the "any attribute = v" index.
pub fn value_key(v: &Value) -> Key {
    tag_key(IndexFamily::Value).concat(&value_fragment(v))
}

// ---------------------------------------------------------------------
// Family 4: instance-level q-gram index
// ---------------------------------------------------------------------

/// `key(A # q)` for a q-gram `q` of a value of attribute `A`.
pub fn instance_gram_key(attr: &str, gram: &str) -> Key {
    tag_key(IndexFamily::InstanceGram).concat(&attr_fragment(attr)).concat(&hash_str(gram))
}

/// Prefix covering all instance grams of attribute `A` (naive-baseline
/// fan-out never uses this — it scans family 2 — but tests do).
pub fn instance_gram_prefix(attr: &str) -> Key {
    tag_key(IndexFamily::InstanceGram).concat(&attr_fragment(attr))
}

// ---------------------------------------------------------------------
// Family 5: schema-level q-gram index
// ---------------------------------------------------------------------

/// `key(q_A)` for a q-gram of the attribute name.
pub fn schema_gram_key(gram: &str) -> Key {
    tag_key(IndexFamily::SchemaGram).concat(&hash_str(gram))
}

// ---------------------------------------------------------------------
// Families 6 & 7: short strings (|s| < q)
// ---------------------------------------------------------------------

/// `key(A # v)` in the short-value family.
pub fn short_value_key(attr: &str, v: &str) -> Key {
    tag_key(IndexFamily::ShortValue).concat(&attr_fragment(attr)).concat(&hash_str(v))
}

/// Prefix covering all short values of attribute `A`.
pub fn short_value_prefix(attr: &str) -> Key {
    tag_key(IndexFamily::ShortValue).concat(&attr_fragment(attr))
}

/// `key(A)` in the short-attr family (schema level).
pub fn short_attr_key(attr: &str) -> Key {
    tag_key(IndexFamily::ShortAttr).concat(&hash_str(attr))
}

/// Prefix covering the whole short-attr family.
pub fn short_attr_prefix() -> Key {
    tag_key(IndexFamily::ShortAttr)
}

/// Prefix covering the **entire** attribute-value family (every stored
/// `(A, v)` posting) — the fan-out set of the naive baseline's schema-level
/// scan, which must visit every peer holding any attribute data.
pub fn attr_value_family_prefix() -> Key {
    tag_key(IndexFamily::AttrValue)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_are_disjoint() {
        // Same string in different roles must never produce prefix-related
        // keys across families.
        let keys = [
            oid_key("bmw"),
            attr_value_key("bmw", &Value::from("bmw")),
            value_key(&Value::from("bmw")),
            instance_gram_key("bmw", "bmw"),
            schema_gram_key("bmw"),
            short_value_key("bmw", "bm"),
            short_attr_key("bm"),
        ];
        for (i, a) in keys.iter().enumerate() {
            for (j, b) in keys.iter().enumerate() {
                if i != j {
                    assert!(!a.is_prefix_of(b), "family {i} key is prefix of family {j} key");
                }
            }
        }
    }

    #[test]
    fn attr_scan_prefix_covers_exactly_its_attribute() {
        let k_hp = attr_value_key("hp", &Value::from(190));
        let k_hpx = attr_value_key("hpx", &Value::from(190));
        let p = attr_scan_prefix("hp");
        assert!(p.is_prefix_of(&k_hp));
        assert!(!p.is_prefix_of(&k_hpx));
    }

    #[test]
    fn value_domains_are_ordered_and_disjoint() {
        let i = value_fragment(&Value::from(5));
        let f = value_fragment(&Value::from(5.0));
        let s = value_fragment(&Value::from("5"));
        assert!(i < f && f < s, "int < float < str domains");
        assert!(value_fragment(&Value::from(-10)) < value_fragment(&Value::from(10)));
        assert!(value_fragment(&Value::from("a")) < value_fragment(&Value::from("b")));
    }

    #[test]
    fn numeric_range_keys_bound_correctly() {
        let (lo, hi) = attr_value_range("price", &Value::from(100), &Value::from(200));
        let in_range = attr_value_key("price", &Value::from(150));
        let below = attr_value_key("price", &Value::from(99));
        let above = attr_value_key("price", &Value::from(201));
        assert!(lo <= in_range && in_range <= hi);
        assert!(below < lo);
        assert!(above > hi);
    }

    #[test]
    fn string_range_includes_exact_upper_bound() {
        let (lo, hi) = attr_value_range("name", &Value::from("audi"), &Value::from("bmw"));
        let exact_hi = attr_value_key("name", &Value::from("bmw"));
        assert!(exact_hi >= lo && exact_hi <= hi);
        let extension = attr_value_key("name", &Value::from("bmwx"));
        // Extensions of the upper bound are included by design (prefix
        // semantics of truncated string keys); strictly larger strings not.
        assert!(extension <= hi);
        let larger = attr_value_key("name", &Value::from("bn"));
        assert!(larger > hi);
    }

    #[test]
    fn gram_keys_cluster_by_attribute() {
        let a = instance_gram_key("name", "bmw");
        let b = instance_gram_key("name", "mwx");
        let c = instance_gram_key("color", "bmw");
        let p = instance_gram_prefix("name");
        assert!(p.is_prefix_of(&a) && p.is_prefix_of(&b));
        assert!(!p.is_prefix_of(&c));
    }

    #[test]
    fn short_families_scan_prefixes() {
        assert!(short_value_prefix("nm").is_prefix_of(&short_value_key("nm", "ab")));
        assert!(short_attr_prefix().is_prefix_of(&short_attr_key("hp")));
    }
}
