//! # sqo-storage — the vertically-oriented data organization
//!
//! Implements §3/§4 of the paper: relational rows are decomposed into RDF-
//! style triples `(oid, A, v)`, and each triple is posted into the overlay
//! under several keys — the oid index, the attribute-value index, the
//! keyword index, and (for similarity support) one posting per q-gram of
//! string values (instance level) and of attribute names (schema level).
//!
//! * [`triple`] — `Triple`, `Row`, `AttrName`, `Value`.
//! * [`keys`] — the key families and their order/prefix guarantees.
//! * [`posting`] — stored index entries and object reassembly.
//! * [`publish`] — the row → postings pipeline with overhead accounting.

pub mod keys;
pub mod posting;
pub mod publish;
pub mod triple;

pub use keys::IndexFamily;
pub use posting::{BaseKind, Object, Posting};
pub use publish::{postings_for_rows, postings_for_triple, PublishConfig, PublishStats};
pub use triple::{AttrName, Row, Triple, TripleRef, Value};
