//! Zipf-distributed sampling for skewed-workload ablations.
//!
//! The paper's related-work discussion notes EZSearch "works well … even
//! for Zipf-like query distributions"; the ablation benches use this sampler
//! to check the same for our operators (popular search strings hit popular
//! q-gram partitions — the stress case for the gram index).

use rand::rngs::StdRng;
use rand::Rng;

/// Inverse-CDF Zipf sampler over ranks `0..n`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build for `n` items with exponent `s > 0` (s ≈ 1 is classic Zipf).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "need at least one item");
        assert!(s > 0.0, "exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Sample a rank (0 = most popular).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let x: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < x).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rank_zero_dominates() {
        let z = ZipfSampler::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] * 5, "zipf head too flat: {counts:?}");
        assert!(counts[0] > 1_000);
    }

    #[test]
    fn all_ranks_reachable() {
        let z = ZipfSampler::new(5, 0.5);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..5_000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn single_item_always_zero() {
        let z = ZipfSampler::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(z.sample(&mut rng), 0);
    }
}
