//! The car-market example database from §3 of the paper: cars with `name`,
//! `hp`, `price`, `mileage` and a `dealer` reference; dealers with `dlrid`,
//! `name` and `addr`. A configurable fraction of dealer rows uses *typo'd
//! attribute names* (`dlrjd`, `dlridx`, …) and typo'd values, motivating the
//! schema- and instance-level similarity queries of the paper's examples
//! ("Select all attribute names which have a maximal distance of 2 from
//! 'dlrid', for instance to detect typos").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqo_storage::triple::{Row, Value};

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct CarMarketConfig {
    pub cars: usize,
    pub dealers: usize,
    /// Probability that a dealer row uses a typo'd `dlrid` attribute name,
    /// and that a car name carries a misspelling.
    pub typo_rate: f64,
    pub seed: u64,
}

impl Default for CarMarketConfig {
    fn default() -> Self {
        Self { cars: 200, dealers: 20, typo_rate: 0.1, seed: 42 }
    }
}

const BRANDS: [(&str, &[&str]); 6] = [
    ("BMW", &["316i", "320d", "330i", "520d", "M3"]),
    ("Audi", &["A3", "A4", "A6", "TT", "Q5"]),
    ("VW", &["Golf", "Passat", "Polo", "Tiguan"]),
    ("Mercedes", &["C200", "E220", "S400"]),
    ("Toyota", &["Corolla", "Camry", "Yaris"]),
    ("Volvo", &["V40", "V60", "XC90"]),
];

const DLRID_TYPOS: [&str; 4] = ["dlrjd", "dlridx", "dlid", "dlrrid"];
const STREETS: [&str; 6] =
    ["Main St", "High St", "Park Ave", "Ringstrasse", "Bahnhofstr", "Elm Rd"];

fn typo(rng: &mut StdRng, s: &str) -> String {
    let mut cs: Vec<char> = s.chars().collect();
    if cs.is_empty() {
        return s.to_string();
    }
    let i = rng.gen_range(0..cs.len());
    match rng.gen_range(0..3) {
        0 => {
            // substitution
            cs[i] = char::from(b'a' + rng.gen_range(0..26u8));
        }
        1 => {
            cs.remove(i);
        }
        _ => {
            cs.insert(i, char::from(b'a' + rng.gen_range(0..26u8)));
        }
    }
    cs.into_iter().collect()
}

/// Dealer rows. Dealer ids are strings `"D<number>"` so that the paper's
/// *similarity* join on ids (`FILTER (dist(?id,?cid) < 2)`) is meaningful.
pub fn dealer_rows(cfg: &CarMarketConfig) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD1A1);
    (0..cfg.dealers)
        .map(|i| {
            let id_attr = if rng.gen_bool(cfg.typo_rate) {
                DLRID_TYPOS[rng.gen_range(0..DLRID_TYPOS.len())].to_string()
            } else {
                "dlrid".to_string()
            };
            let name = format!("autohaus {}", crate::words::generate_word(&mut rng, 6));
            let addr =
                format!("{} {}", rng.gen_range(1..200), STREETS[rng.gen_range(0..STREETS.len())]);
            Row::new(
                format!("dlr:{i}"),
                vec![
                    (id_attr, Value::from(format!("D{i:04}"))),
                    ("name".to_string(), Value::from(name)),
                    ("addr".to_string(), Value::from(addr)),
                ],
            )
        })
        .collect()
}

/// Car rows referencing the dealers.
pub fn car_rows(cfg: &CarMarketConfig) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xCA25);
    (0..cfg.cars)
        .map(|i| {
            let (brand, models) = BRANDS[rng.gen_range(0..BRANDS.len())];
            let model = models[rng.gen_range(0..models.len())];
            let mut name = format!("{brand} {model}");
            if rng.gen_bool(cfg.typo_rate) {
                name = typo(&mut rng, &name);
            }
            let dealer = rng.gen_range(0..cfg.dealers.max(1));
            Row::new(
                format!("car:{i}"),
                vec![
                    ("name".to_string(), Value::from(name)),
                    ("hp".to_string(), Value::from(rng.gen_range(60..420) as i64)),
                    ("price".to_string(), Value::from(rng.gen_range(4_000..90_000) as i64)),
                    ("mileage".to_string(), Value::from(rng.gen_range(0..250_000) as i64)),
                    ("dealer".to_string(), Value::from(format!("D{dealer:04}"))),
                ],
            )
        })
        .collect()
}

/// The full example database: dealers + cars.
pub fn car_market(cfg: &CarMarketConfig) -> Vec<Row> {
    let mut rows = dealer_rows(cfg);
    rows.extend(car_rows(cfg));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_determinism() {
        let cfg = CarMarketConfig::default();
        let rows = car_market(&cfg);
        assert_eq!(rows.len(), cfg.cars + cfg.dealers);
        assert_eq!(rows, car_market(&cfg));
    }

    #[test]
    fn cars_reference_existing_dealers() {
        let cfg = CarMarketConfig { cars: 50, dealers: 5, ..Default::default() };
        let dealers = dealer_rows(&cfg);
        let cars = car_rows(&cfg);
        for car in &cars {
            let d = car.get("dealer").and_then(|v| v.as_str().map(str::to_string)).unwrap();
            assert!(
                dealers
                    .iter()
                    .any(|row| row.fields.iter().any(|(_, v)| v.as_str() == Some(d.as_str()))),
                "dangling dealer reference {d}"
            );
        }
    }

    #[test]
    fn typo_attributes_appear() {
        let cfg = CarMarketConfig { dealers: 200, typo_rate: 0.3, ..Default::default() };
        let dealers = dealer_rows(&cfg);
        let typod = dealers
            .iter()
            .filter(|r| r.fields.iter().any(|(a, _)| DLRID_TYPOS.contains(&a.as_str())))
            .count();
        assert!(typod > 20, "expected typo'd dlrid attributes, got {typod}");
        let clean =
            dealers.iter().filter(|r| r.fields.iter().any(|(a, _)| a.as_str() == "dlrid")).count();
        assert!(clean > typod, "most rows stay clean");
    }

    #[test]
    fn zero_typo_rate_is_clean() {
        let cfg = CarMarketConfig { typo_rate: 0.0, ..Default::default() };
        for r in dealer_rows(&cfg) {
            assert!(r.fields.iter().any(|(a, _)| a.as_str() == "dlrid"));
        }
    }

    #[test]
    fn numeric_fields_in_expected_ranges() {
        let cfg = CarMarketConfig::default();
        for car in car_rows(&cfg) {
            let hp = car.get("hp").unwrap().as_int().unwrap();
            assert!((60..420).contains(&hp));
            let price = car.get("price").unwrap().as_int().unwrap();
            assert!((4_000..90_000).contains(&price));
        }
    }
}
