//! The paper's evaluation workload (§6).
//!
//! *"In each test we processed a mix of 6 queries initiated 40 times. The
//! set consists of three top-N queries, filtering the N = 5, 10, 15 nearest
//! neighbors to a provided search string (up to a maximal distance of 5),
//! and three similarity self-joins over one column. The joins are processed
//! with a maximal join distance of d = 1, 2, 3 on the chosen column. In each
//! run we chose the initiating peer as well as the search string (from the
//! set of all strings) of each query randomly and started each of the three
//! methods successively."*
//!
//! One calibration note (expanded in EXPERIMENTS.md): the paper's total
//! message counts (≈10³–10⁴ for the whole 240-query mix) are inconsistent
//! with joining a 10⁵-row column in full — a single full self-join would
//! dwarf them. The joins here therefore run over a bounded stratified left
//! sample (`join_left_limit`, default 20), which preserves the join's
//! *per-left-object* cost profile that the figure actually compares.

use crate::zipf::ZipfSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqo_core::{JoinOptions, QueryStats, SimilarityEngine, Strategy};

/// The §6 query mix, parameterized.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Top-N sizes (paper: 5, 10, 15).
    pub top_n: Vec<usize>,
    /// Maximal distance for the top-N NN search (paper: 5).
    pub top_n_dmax: usize,
    /// Self-join distances (paper: 1, 2, 3).
    pub join_distances: Vec<usize>,
    /// Initiations per query (paper: 40).
    pub initiations: usize,
    /// Left-side cap per join (see module docs).
    pub join_left_limit: Option<usize>,
    /// Zipf exponent for search-string popularity; 0.0 = uniform (the
    /// paper's random choice), > 0 enables the skewed-workload ablation.
    pub zipf_exponent: f64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        Self {
            top_n: vec![5, 10, 15],
            top_n_dmax: 5,
            join_distances: vec![1, 2, 3],
            initiations: 40,
            join_left_limit: Some(20),
            zipf_exponent: 0.0,
        }
    }
}

impl WorkloadSpec {
    /// A scaled-down mix for tests and smoke runs.
    pub fn smoke() -> Self {
        Self {
            top_n: vec![3],
            top_n_dmax: 2,
            join_distances: vec![1],
            initiations: 2,
            join_left_limit: Some(4),
            zipf_exponent: 0.0,
        }
    }

    /// Total number of query initiations in the mix.
    pub fn total_queries(&self) -> usize {
        (self.top_n.len() + self.join_distances.len()) * self.initiations
    }
}

/// Aggregated outcome of one workload run.
#[derive(Debug, Clone, Default)]
pub struct WorkloadReport {
    pub total: QueryStats,
    pub queries_run: usize,
    pub top_n_stats: QueryStats,
    pub join_stats: QueryStats,
}

impl WorkloadReport {
    /// Messages per query, the y-axis of Figure 1 (a)/(c) divided by the
    /// mix size.
    pub fn messages_per_query(&self) -> f64 {
        if self.queries_run == 0 {
            return 0.0;
        }
        self.total.traffic.messages as f64 / self.queries_run as f64
    }
}

/// Run the §6 mix against `engine` on string attribute `attr`, drawing
/// search strings from `strings`. Deterministic for a given `seed`.
pub fn run_workload(
    engine: &mut SimilarityEngine,
    attr: &str,
    strings: &[String],
    spec: &WorkloadSpec,
    strategy: Strategy,
    seed: u64,
) -> WorkloadReport {
    assert!(!strings.is_empty(), "workload needs a non-empty string pool");
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf =
        (spec.zipf_exponent > 0.0).then(|| ZipfSampler::new(strings.len(), spec.zipf_exponent));
    let pick = |rng: &mut StdRng| -> &str {
        let idx = match &zipf {
            Some(z) => z.sample(rng),
            None => rng.gen_range(0..strings.len()),
        };
        &strings[idx]
    };

    let mut report = WorkloadReport::default();
    for _ in 0..spec.initiations {
        for &n in &spec.top_n {
            let s = pick(&mut rng).to_string();
            let from = engine.random_peer();
            let res = engine.top_n_similar(Some(attr), n, &s, spec.top_n_dmax, from, strategy);
            report.total.absorb(&res.stats);
            report.top_n_stats.absorb(&res.stats);
            report.queries_run += 1;
        }
        for &d in &spec.join_distances {
            let from = engine.random_peer();
            let opts =
                JoinOptions { strategy, left_limit: spec.join_left_limit, ..Default::default() };
            let res = engine.sim_join(attr, Some(attr), d, from, &opts);
            report.total.absorb(&res.stats);
            report.join_stats.absorb(&res.stats);
            report.queries_run += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqo_core::EngineBuilder;
    use sqo_storage::triple::{Row, Value};

    fn engine(words: &[String], peers: usize) -> SimilarityEngine {
        let rows: Vec<Row> = words
            .iter()
            .enumerate()
            .map(|(i, w)| Row::new(format!("w:{i}"), [("word", Value::from(w.clone()))]))
            .collect();
        EngineBuilder::new().peers(peers).seed(60).q(2).build_with_rows(&rows)
    }

    #[test]
    fn smoke_mix_runs_and_counts() {
        let words = crate::words::bible_words(300, 9);
        let mut e = engine(&words, 32);
        let spec = WorkloadSpec::smoke();
        let rep = run_workload(&mut e, "word", &words, &spec, Strategy::QGrams, 1);
        assert_eq!(rep.queries_run, spec.total_queries());
        assert!(rep.total.traffic.messages > 0);
        assert!(rep.messages_per_query() > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let words = crate::words::bible_words(200, 10);
        let spec = WorkloadSpec::smoke();
        let run = || {
            let mut e = engine(&words, 16);
            run_workload(&mut e, "word", &words, &spec, Strategy::QSamples, 5).total.traffic
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn qsamples_probe_no_more_than_qgrams() {
        let words = crate::words::bible_words(400, 11);
        let spec = WorkloadSpec::smoke();
        let mut e1 = engine(&words, 64);
        let g = run_workload(&mut e1, "word", &words, &spec, Strategy::QGrams, 3);
        let mut e2 = engine(&words, 64);
        let s = run_workload(&mut e2, "word", &words, &spec, Strategy::QSamples, 3);
        assert!(
            s.total.probes <= g.total.probes,
            "samples {0} vs grams {1}",
            s.total.probes,
            g.total.probes
        );
    }

    #[test]
    fn paper_mix_shape() {
        let spec = WorkloadSpec::default();
        assert_eq!(spec.total_queries(), 240);
    }
}
