//! Synthetic substitute for the paper's first evaluation dataset:
//! "106704 single words from the English bible, with word lengths from 5 to
//! 14 and an average length of 6.46" (§6).
//!
//! We cannot ship the original word list, so this module generates a
//! deterministic English-like vocabulary matched to the published
//! statistics: the same count, the same length range, a mean length within
//! a hair of 6.46, and natural letter-bigram skew (so q-gram posting lists
//! are realistically non-uniform — the property that actually drives the
//! similarity operators' traffic). See DESIGN.md §2 for the substitution
//! argument.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashSet;

/// Size of the paper's bible-words dataset.
pub const BIBLE_WORD_COUNT: usize = 106_704;

/// Length weights for lengths 5..=14, tuned so the mean lands at ≈6.46
/// (the paper reports 6.46 over the same range).
const LENGTH_WEIGHTS: [u32; 10] = [42, 24, 14, 8, 4, 3, 2, 1, 1, 1];

/// English-ish letter model: likely successors per letter (repetitions
/// encode weight). Derived from common digraph frequencies; exactness is
/// irrelevant — what matters is a skewed, natural-looking bigram
/// distribution.
const SUCCESSORS: [(&str, &str); 27] = [
    ("a", "nnnnnnnnttttttrrrrllllsssscdmgbvpyi"),
    ("b", "eeeeeaaoluriy"),
    ("c", "oooooohhhhheeeaaktiru"),
    ("d", "eeeeeeeiiiaosuryl"),
    ("e", "rrrrrrrrrrnnnnnnssssssdddddaltcmvpyigfx"),
    ("f", "oooooeeeairlu"),
    ("g", "eeeehhhaoirlnu"),
    ("h", "eeeeeeeeeeeeaaaaaoiitruy"),
    ("i", "nnnnnnnnnnttttssssccccoolldmrgvfea"),
    ("j", "oueea"),
    ("k", "eeeeiinsaly"),
    ("l", "eeeeeeaaaiiiloudsty"),
    ("m", "eeeeeaaaoiipbuy"),
    ("n", "gggggggdddddttttteeeeeccssaoiukvy"),
    ("o", "nnnnnnrrrrrffffuuumttllwsvpdckgi"),
    ("p", "eeeeaaaorrlihtu"),
    ("q", "uuuuu"),
    ("r", "eeeeeeeeeeaaaaiiiootsdmnlcyu"),
    ("s", "tttttttteeeeeehhhhaaaioucpslmkw"),
    ("t", "hhhhhhhhhhhheeeeeeiiiaaaoorsutlwy"),
    ("u", "rrrrrnnnnsssstttllmpgcdbei"),
    ("v", "eeeeeiiaoy"),
    ("w", "aaaaiiihhheeeoonr"),
    ("x", "ptaeci"),
    ("y", "eosai"),
    ("z", "eaoiz"),
    // Word starts (index 26): overall initial-letter distribution.
    ("^", "ttttttttssssssaaaaaawwwwccccbbbbppphhhhffffmmmdddrrrlllgeeiounvjky"),
];

fn next_letter(rng: &mut StdRng, prev: Option<u8>) -> u8 {
    let table = match prev {
        Some(c) => SUCCESSORS[(c - b'a') as usize].1,
        None => SUCCESSORS[26].1,
    };
    let bytes = table.as_bytes();
    bytes[rng.gen_range(0..bytes.len())]
}

/// Sample a word length in 5..=14 under [`LENGTH_WEIGHTS`].
fn sample_length(rng: &mut StdRng) -> usize {
    let total: u32 = LENGTH_WEIGHTS.iter().sum();
    let mut x = rng.gen_range(0..total);
    for (i, &w) in LENGTH_WEIGHTS.iter().enumerate() {
        if x < w {
            return 5 + i;
        }
        x -= w;
    }
    unreachable!("weights cover the range");
}

/// One generated word of exactly `len` letters.
pub(crate) fn generate_word(rng: &mut StdRng, len: usize) -> String {
    let mut word = String::with_capacity(len);
    let mut prev = None;
    for _ in 0..len {
        let c = next_letter(rng, prev);
        word.push(c as char);
        prev = Some(c);
    }
    word
}

/// Generate `count` **distinct** bible-like words, deterministically for a
/// given seed. Lengths lie in 5..=14 with mean ≈ 6.46.
pub fn bible_words(count: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = FxHashSet::with_capacity_and_hasher(count * 2, Default::default());
    let mut words = Vec::with_capacity(count);
    while words.len() < count {
        let len = sample_length(&mut rng);
        let w = generate_word(&mut rng, len);
        if seen.insert(w.clone()) {
            words.push(w);
        }
    }
    words
}

/// (min, max, mean) character lengths — used by tests and EXPERIMENTS.md.
pub fn length_stats(words: &[String]) -> (usize, usize, f64) {
    let mut min = usize::MAX;
    let mut max = 0;
    let mut sum = 0usize;
    for w in words {
        let l = w.chars().count();
        min = min.min(l);
        max = max.max(l);
        sum += l;
    }
    if words.is_empty() {
        (0, 0, 0.0)
    } else {
        (min, max, sum as f64 / words.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_statistics() {
        let words = bible_words(20_000, 1);
        assert_eq!(words.len(), 20_000);
        let (min, max, mean) = length_stats(&words);
        assert!(min >= 5, "min length {min}");
        assert!(max <= 14, "max length {max}");
        assert!((mean - 6.46).abs() < 0.25, "mean length {mean:.3} too far from the paper's 6.46");
    }

    #[test]
    fn words_are_distinct() {
        let words = bible_words(5_000, 2);
        let set: FxHashSet<&String> = words.iter().collect();
        assert_eq!(set.len(), words.len());
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(bible_words(100, 7), bible_words(100, 7));
        assert_ne!(bible_words(100, 7), bible_words(100, 8));
    }

    #[test]
    fn letters_only() {
        for w in bible_words(500, 3) {
            assert!(w.chars().all(|c| c.is_ascii_lowercase()), "non-letter in {w:?}");
        }
    }

    #[test]
    fn bigram_distribution_is_skewed() {
        // Natural-language-like skew: the most common bigram should be much
        // more frequent than the median one.
        let words = bible_words(5_000, 4);
        let mut counts: std::collections::HashMap<(char, char), usize> = Default::default();
        for w in &words {
            let cs: Vec<char> = w.chars().collect();
            for p in cs.windows(2) {
                *counts.entry((p[0], p[1])).or_insert(0) += 1;
            }
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top = freqs[0];
        let median = freqs[freqs.len() / 2];
        assert!(top >= median * 10, "bigram skew too flat: top {top}, median {median}");
    }
}
