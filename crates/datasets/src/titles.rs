//! Synthetic substitute for the paper's second evaluation dataset:
//! "66349 titles of paintings, with lengths from 1 to 132 including spaces.
//! The average length of the titles is 37.08" (§6).
//!
//! Titles are compositions of short function words and generated content
//! words, giving long, space-separated strings whose q-grams are heavily
//! shared across titles ("the used titles are fairly long and include
//! spaces, which … is a more realistic assumption for a wide range of
//! scenarios").

use crate::words::generate_word;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashSet;

/// Size of the paper's painting-titles dataset.
pub const PAINTING_TITLE_COUNT: usize = 66_349;

/// Maximum title length (characters, including spaces), per the paper.
pub const MAX_TITLE_LEN: usize = 132;

const FUNCTION_WORDS: [&str; 16] = [
    "a", "of", "the", "in", "on", "at", "de", "la", "le", "und", "der", "with", "and", "by", "sur",
    "les",
];

fn title_word(rng: &mut StdRng) -> String {
    if rng.gen_bool(0.35) {
        FUNCTION_WORDS[rng.gen_range(0..FUNCTION_WORDS.len())].to_string()
    } else {
        let len = rng.gen_range(3..=11);
        generate_word(rng, len)
    }
}

fn one_title(rng: &mut StdRng) -> String {
    // ~2% of titles are a single very short word (the dataset's length-1
    // tail); the rest aim at a target length whose mean lands near 37.
    if rng.gen_bool(0.02) {
        let l = rng.gen_range(1..=3);
        return generate_word(rng, l);
    }
    // Target lengths: bulk around the mean via two uniform draws, plus an
    // occasional long-descriptive-title tail reaching towards the 132 cap.
    let target = if rng.gen_bool(0.06) {
        62 + rng.gen_range(0..64usize)
    } else {
        8 + rng.gen_range(0..27usize) + rng.gen_range(0..27usize)
    };
    let mut title = String::with_capacity(target + 12);
    loop {
        let w = title_word(rng);
        if !title.is_empty() {
            if title.len() + 1 + w.len() > MAX_TITLE_LEN {
                break;
            }
            title.push(' ');
        }
        title.push_str(&w);
        if title.len() >= target {
            break;
        }
    }
    title
}

/// Generate `count` **distinct** painting-like titles, deterministically.
pub fn painting_titles(count: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    let mut seen = FxHashSet::with_capacity_and_hasher(count * 2, Default::default());
    let mut titles = Vec::with_capacity(count);
    while titles.len() < count {
        let t = one_title(&mut rng);
        debug_assert!(t.len() <= MAX_TITLE_LEN);
        if seen.insert(t.clone()) {
            titles.push(t);
        }
    }
    titles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::words::length_stats;

    #[test]
    fn matches_paper_statistics() {
        let titles = painting_titles(20_000, 1);
        let (min, max, mean) = length_stats(&titles);
        assert!(min >= 1);
        assert!(max <= MAX_TITLE_LEN, "max {max}");
        assert!(max > 80, "long tail expected, max only {max}");
        assert!((mean - 37.08).abs() < 4.0, "mean length {mean:.2} too far from the paper's 37.08");
    }

    #[test]
    fn titles_contain_spaces() {
        let titles = painting_titles(2_000, 2);
        let with_spaces = titles.iter().filter(|t| t.contains(' ')).count();
        assert!(with_spaces as f64 > 0.9 * titles.len() as f64, "most titles must be multi-word");
    }

    #[test]
    fn distinct_and_deterministic() {
        let a = painting_titles(3_000, 3);
        let set: FxHashSet<&String> = a.iter().collect();
        assert_eq!(set.len(), a.len());
        assert_eq!(a, painting_titles(3_000, 3));
    }

    #[test]
    fn short_tail_exists() {
        let titles = painting_titles(20_000, 4);
        assert!(
            titles.iter().any(|t| t.len() <= 4),
            "the length-1..4 tail of the distribution is missing"
        );
    }
}
