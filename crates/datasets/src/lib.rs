//! # sqo-datasets — datasets and workloads for the paper's evaluation
//!
//! The paper evaluates on two string datasets we cannot ship (bible words,
//! painting titles); [`words`] and [`titles`] generate deterministic
//! synthetic equivalents matched to the published count/length statistics
//! (substitutions documented in DESIGN.md §2). [`cars`] generates the §3
//! car-market example database (with schema typos) used by the VQL examples,
//! and [`workload`] reproduces the §6 query mix. [`zipf`] supports the
//! skewed-workload ablations.

pub mod cars;
pub mod titles;
pub mod words;
pub mod workload;
pub mod zipf;

pub use cars::{car_market, car_rows, dealer_rows, CarMarketConfig};
pub use titles::{painting_titles, MAX_TITLE_LEN, PAINTING_TITLE_COUNT};
pub use words::{bible_words, length_stats, BIBLE_WORD_COUNT};
pub use workload::{run_workload, WorkloadReport, WorkloadSpec};
pub use zipf::ZipfSampler;

use sqo_storage::triple::{Row, Value};

/// Turn a list of strings into single-attribute rows (the §6 datasets are
/// one-column relations).
pub fn string_rows(attr: &str, strings: &[String], oid_prefix: &str) -> Vec<Row> {
    strings
        .iter()
        .enumerate()
        .map(|(i, s)| Row::new(format!("{oid_prefix}:{i}"), [(attr, Value::from(s.clone()))]))
        .collect()
}
