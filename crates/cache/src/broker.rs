//! The combined cache + batcher façade the engine's probe pipeline talks
//! to (via `sqo-core`'s `ProbeBroker` trait).

use crate::batch::{ChannelPool, ChannelPoolState, PartitionChannel};
use crate::lru::{LruCache, LruState};
use serde::Serialize;
use sqo_overlay::key::Key;
use sqo_overlay::peer::PeerId;
use sqo_overlay::PostingList;
use sqo_storage::posting::Posting;
use std::sync::Arc;

/// Everything configurable about the hot-path services. Both services
/// default to **off** — the engine then behaves exactly as without a
/// broker, which is what the equivalence tests pin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrokerConfig {
    /// Enable the initiator-side posting cache.
    pub cache: bool,
    /// Cached (initiator, gram-key) entries kept before LRU eviction.
    pub cache_capacity: usize,
    /// Virtual-time TTL of a cached posting list, microseconds.
    pub cache_ttl_us: u64,
    /// TinyLFU admission gate on the posting cache: when full, a new list
    /// displaces a still-valid entry only if a frequency sketch estimates
    /// its key hotter — one-hit wonders stop washing out the hot set. Off
    /// by default (unconditional admission, the pre-gate behavior).
    pub admission: bool,
    /// Enable cross-query probe coalescing (partition channels).
    pub batch: bool,
    /// Coalescing window: after a probe routes to a partition, the
    /// exchange stays open this long (virtual time) and probes arriving
    /// within it ride the channel instead of routing again.
    pub batch_window_us: u64,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        Self {
            cache: false,
            cache_capacity: 4096,
            cache_ttl_us: 2_000_000, // 2 virtual seconds
            admission: false,
            batch: false,
            batch_window_us: 4_000,
        }
    }
}

impl BrokerConfig {
    /// Both services on, default sizing.
    pub fn enabled() -> Self {
        Self { cache: true, batch: true, ..Self::default() }
    }

    /// Cache only (no added probe latency from the batch window).
    pub fn cache_only() -> Self {
        Self { cache: true, ..Self::default() }
    }

    /// Cache with the TinyLFU admission gate (the A/B counterpart of
    /// [`BrokerConfig::cache_only`]).
    pub fn cache_with_admission() -> Self {
        Self { cache: true, admission: true, ..Self::default() }
    }

    /// Batching only (A/B isolation of the coalescing win).
    pub fn batch_only() -> Self {
        Self { batch: true, ..Self::default() }
    }

    pub fn any_enabled(&self) -> bool {
        self.cache || self.batch
    }
}

/// Lifetime service counters (the bench's hit-rate and messages-saved
/// lines come from here; per-query attribution lives in `QueryStats`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct BrokerCounters {
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Probe submissions that rode a channel another probe's route opened.
    pub probes_coalesced: u64,
    /// Routed exchanges that opened a partition channel.
    pub channels_opened: u64,
    /// Cache inserts the TinyLFU admission gate turned away (0 with the
    /// gate off).
    pub admission_rejects: u64,
    /// Overlay messages the coalesced probes avoided: the route hops a
    /// rider would have paid, minus the single direct request it sent
    /// instead.
    pub messages_saved: u64,
}

impl BrokerCounters {
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// The combined service: an initiator-keyed posting LRU plus the
/// per-partition channel pool. Pure bookkeeping — see the crate docs.
pub struct CacheBatchBroker {
    cfg: BrokerConfig,
    cache: LruCache<(PeerId, Key), PostingList<Posting>>,
    channels: ChannelPool,
    counters: BrokerCounters,
}

impl CacheBatchBroker {
    pub fn new(cfg: BrokerConfig) -> Self {
        let (capacity, ttl) = (cfg.cache_capacity.max(1), cfg.cache_ttl_us);
        Self {
            cfg,
            cache: if cfg.admission {
                LruCache::with_admission(capacity, ttl)
            } else {
                LruCache::new(capacity, ttl)
            },
            channels: ChannelPool::new(cfg.batch_window_us),
            counters: BrokerCounters::default(),
        }
    }

    pub fn config(&self) -> &BrokerConfig {
        &self.cfg
    }

    pub fn counters(&self) -> BrokerCounters {
        let mut c = self.counters;
        c.channels_opened = self.channels.opened;
        c.admission_rejects = self.cache.admission_rejects();
        c
    }

    pub fn cache_enabled(&self) -> bool {
        self.cfg.cache
    }

    pub fn batch_enabled(&self) -> bool {
        self.cfg.batch
    }

    /// Cache lookup for `from`'s copy of `key`'s posting list. Hits hand
    /// back a shared handle onto the cached allocation (`Arc` clone) —
    /// no posting is copied on the cache fast path.
    pub fn cache_get(
        &mut self,
        from: PeerId,
        key: &Key,
        now_us: u64,
        epoch: u64,
    ) -> Option<PostingList<Posting>> {
        debug_assert!(self.cfg.cache);
        match self.cache.get(&(from, key.clone()), now_us, epoch) {
            Some(list) => {
                self.counters.cache_hits += 1;
                Some(Arc::clone(list))
            }
            None => {
                self.counters.cache_misses += 1;
                None
            }
        }
    }

    /// Fill `from`'s cache with the full list fetched for `key` (subject
    /// to the admission gate when enabled). The handle is stored as-is:
    /// cache entry, overlay store and in-flight replies all share one
    /// allocation.
    pub fn cache_put(
        &mut self,
        from: PeerId,
        key: &Key,
        list: PostingList<Posting>,
        now_us: u64,
        epoch: u64,
    ) {
        if self.cfg.cache {
            self.cache.put((from, key.clone()), list, now_us, epoch);
        }
    }

    /// Size of `from`'s valid cached copy of `key`'s list, side-effect
    /// free (no counters, no LRU touch) — the cost model's exact-size
    /// source for lists the initiator already fetched.
    pub fn cache_peek_len(
        &self,
        from: PeerId,
        key: &Key,
        now_us: u64,
        epoch: u64,
    ) -> Option<usize> {
        if !self.cfg.cache {
            return None;
        }
        self.cache.peek(&(from, key.clone()), now_us, epoch).map(|l| l.len())
    }

    /// The open channel for `part`, if any. `n_keys` is the number of probe
    /// keys that will ride it on success — `probes_coalesced` counts keys,
    /// matching the per-query `QueryStats` attribution.
    pub fn channel_lookup(
        &mut self,
        part: usize,
        now_us: u64,
        epoch: u64,
        n_keys: u64,
    ) -> Option<PartitionChannel> {
        debug_assert!(self.cfg.batch);
        let c = self.channels.lookup(part, now_us, epoch)?;
        self.counters.probes_coalesced += n_keys;
        Some(c)
    }

    /// Record a freshly routed exchange as `part`'s open channel.
    pub fn channel_record(
        &mut self,
        part: usize,
        owner: PeerId,
        route_hops: u64,
        now_us: u64,
        epoch: u64,
    ) {
        if self.cfg.batch {
            self.channels.record(part, owner, route_hops, now_us, epoch);
        }
    }

    /// Record overlay messages a coalesced probe avoided (counted by the
    /// engine, which knows what the routed exchange would have cost).
    pub fn count_messages_saved(&mut self, n: u64) {
        self.counters.messages_saved += n;
    }

    /// Walk the broker into an owned [`BrokerState`]: config, raw
    /// counters, the posting cache (with its admission sketch), and the
    /// open channel pool. Cached posting lists are exported as shared
    /// handles (`Arc` clones) — nothing is copied here.
    pub fn export_state(&self) -> BrokerState {
        BrokerState {
            cfg: self.cfg,
            counters: self.counters,
            cache: self.cache.export_state(),
            channels: self.channels.export_state(),
        }
    }

    /// Rebuild a broker from an exported image. The restored broker makes
    /// exactly the hit/miss/coalesce decisions the original would have
    /// made next — including fencing entries whose churn epoch differs
    /// from the lookup's (in either direction).
    pub fn from_state(state: BrokerState) -> Self {
        Self {
            cfg: state.cfg,
            cache: LruCache::from_state(state.cache),
            channels: ChannelPool::from_state(state.channels),
            counters: state.counters,
        }
    }
}

/// The owned image of a [`CacheBatchBroker`] (checkpointing).
#[derive(Debug, Clone)]
pub struct BrokerState {
    pub cfg: BrokerConfig,
    /// Raw lifetime counters (`channels_opened`/`admission_rejects` are
    /// derived on read and live in the pool/cache states).
    pub counters: BrokerCounters,
    pub cache: LruState<(PeerId, Key), PostingList<Posting>>,
    pub channels: ChannelPoolState,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_hits_and_misses() {
        let mut b = CacheBatchBroker::new(BrokerConfig::cache_only());
        let k = Key::from_bytes(b"k");
        assert!(b.cache_get(PeerId(1), &k, 0, 0).is_none());
        b.cache_put(PeerId(1), &k, PostingList::default(), 0, 0);
        assert!(b.cache_get(PeerId(1), &k, 10, 0).is_some());
        assert!(b.cache_get(PeerId(2), &k, 10, 0).is_none(), "caches are per initiator");
        let c = b.counters();
        assert_eq!(c.cache_hits, 1);
        assert_eq!(c.cache_misses, 2);
        assert!((c.hit_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn disabled_cache_never_stores() {
        let mut b = CacheBatchBroker::new(BrokerConfig::batch_only());
        let k = Key::from_bytes(b"k");
        b.cache_put(PeerId(1), &k, PostingList::default(), 0, 0);
        assert!(!b.cache_enabled());
        assert!(b.batch_enabled());
    }

    #[test]
    fn restored_epoch_fences_entries_cached_by_a_diverged_branch() {
        // Checkpoint a broker under churn epoch 5 with one cached list.
        let mut b = CacheBatchBroker::new(BrokerConfig::cache_only());
        let k1 = Key::from_bytes(b"k1");
        let k2 = Key::from_bytes(b"k2");
        b.cache_put(PeerId(1), &k1, PostingList::default(), 0, 5);
        let checkpoint = b.export_state();

        // A diverged branch resumes from it, churns (epoch 5 -> 6), and
        // caches a fresh entry under the new epoch.
        let mut diverged = CacheBatchBroker::from_state(checkpoint.clone());
        diverged.cache_put(PeerId(1), &k2, PostingList::default(), 10, 6);
        assert!(diverged.cache_get(PeerId(1), &k2, 20, 6).is_some());

        // Restoring that branch's state and looking up under the original
        // checkpoint epoch (5): the post-divergence entry is invalid — the
        // restored `Network::cache_epoch` fences it even though its epoch
        // stamp is *newer* than the lookup's.
        let mut restored = CacheBatchBroker::from_state(diverged.export_state());
        assert!(
            restored.cache_get(PeerId(1), &k2, 30, 5).is_none(),
            "entry cached after the checkpoint must not be served at the restored epoch"
        );
        assert!(
            restored.cache_get(PeerId(1), &k1, 30, 5).is_some(),
            "the checkpoint-epoch entry is still valid"
        );
    }

    #[test]
    fn state_round_trip_keeps_counters_in_lockstep() {
        let mut b = CacheBatchBroker::new(BrokerConfig::enabled());
        let k = Key::from_bytes(b"k");
        b.cache_get(PeerId(1), &k, 0, 0); // miss
        b.cache_put(PeerId(1), &k, PostingList::default(), 0, 0);
        b.channel_record(4, PeerId(7), 3, 5, 0);
        b.channel_lookup(4, 10, 0, 2);
        b.count_messages_saved(2);
        let mut r = CacheBatchBroker::from_state(b.export_state());
        assert_eq!(r.counters(), b.counters());
        // Both continue identically.
        assert!(b.cache_get(PeerId(1), &k, 20, 0).is_some());
        assert!(r.cache_get(PeerId(1), &k, 20, 0).is_some());
        assert!(b.channel_lookup(4, 20, 0, 1).is_some());
        assert!(r.channel_lookup(4, 20, 0, 1).is_some());
        assert_eq!(r.counters(), b.counters());
    }

    #[test]
    fn epoch_bump_is_a_miss() {
        let mut b = CacheBatchBroker::new(BrokerConfig::cache_only());
        let k = Key::from_bytes(b"k");
        b.cache_put(PeerId(1), &k, PostingList::default(), 0, 3);
        assert!(b.cache_get(PeerId(1), &k, 1, 3).is_some());
        assert!(b.cache_get(PeerId(1), &k, 2, 4).is_none(), "churn epoch invalidates");
    }
}
