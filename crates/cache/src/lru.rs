//! A bounded LRU map with virtual-time TTL and epoch invalidation.
//!
//! Deliberately simple: a hash map plus a monotone use-tick, with
//! eviction scanning for the least-recently-used entry. Capacities on the
//! hot path are a few thousand entries, and the scan only runs when the
//! cache is full — profile before reaching for an intrusive list.

use rustc_hash::FxHashMap;
use std::hash::Hash;

struct Entry<V> {
    value: V,
    /// Churn epoch the value was fetched under; a bumped epoch kills it.
    epoch: u64,
    /// Virtual time the value was inserted (TTL anchor).
    inserted_us: u64,
    /// Monotone use-tick for LRU ordering.
    last_used: u64,
}

/// Bounded LRU with TTL + epoch validity. `get` misses (and evicts) expired
/// and stale-epoch entries, so callers never see invalid data.
pub struct LruCache<K, V> {
    map: FxHashMap<K, Entry<V>>,
    capacity: usize,
    ttl_us: u64,
    tick: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// # Panics
    /// Panics if `capacity == 0` (use an `Option` instead of an empty cache).
    pub fn new(capacity: usize, ttl_us: u64) -> Self {
        assert!(capacity > 0, "zero-capacity cache");
        Self { map: FxHashMap::default(), capacity, ttl_us, tick: 0 }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn valid(&self, e: &Entry<V>, now_us: u64, epoch: u64) -> bool {
        e.epoch == epoch && now_us.saturating_sub(e.inserted_us) <= self.ttl_us
    }

    /// Look up `key` at virtual time `now_us` under churn epoch `epoch`.
    /// Expired or stale entries are evicted and reported as a miss.
    pub fn get(&mut self, key: &K, now_us: u64, epoch: u64) -> Option<&V> {
        match self.map.get(key) {
            Some(e) if self.valid(e, now_us, epoch) => {}
            Some(_) => {
                self.map.remove(key);
                return None;
            }
            None => return None,
        }
        self.tick += 1;
        let tick = self.tick;
        let e = self.map.get_mut(key).expect("checked above");
        e.last_used = tick;
        Some(&e.value)
    }

    /// Insert (or refresh) `key`, evicting the least-recently-used entry
    /// when the cache is full.
    pub fn put(&mut self, key: K, value: V, now_us: u64, epoch: u64) {
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            // Prefer evicting an invalid entry; otherwise the LRU one.
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| (self.valid(e, now_us, epoch), e.last_used))
                .map(|(k, _)| k.clone());
            if let Some(v) = victim {
                self.map.remove(&v);
            }
        }
        self.map.insert(key, Entry { value, epoch, inserted_us: now_us, last_used: self.tick });
    }

    /// Drop every entry (tests and explicit resets).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_and_lru_eviction() {
        let mut c: LruCache<u32, &str> = LruCache::new(2, 1_000);
        c.put(1, "a", 0, 0);
        c.put(2, "b", 0, 0);
        assert_eq!(c.get(&1, 10, 0), Some(&"a")); // 1 is now most recent
        c.put(3, "c", 20, 0); // evicts 2
        assert_eq!(c.get(&2, 30, 0), None);
        assert_eq!(c.get(&1, 30, 0), Some(&"a"));
        assert_eq!(c.get(&3, 30, 0), Some(&"c"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn ttl_expires_entries() {
        let mut c: LruCache<u32, u32> = LruCache::new(4, 100);
        c.put(1, 11, 0, 0);
        assert_eq!(c.get(&1, 100, 0), Some(&11), "at the TTL boundary, still valid");
        assert_eq!(c.get(&1, 101, 0), None, "past the TTL, expired");
        assert!(c.is_empty(), "expired entries are evicted on lookup");
    }

    #[test]
    fn epoch_bump_invalidates_everything_older() {
        let mut c: LruCache<u32, u32> = LruCache::new(4, 1_000_000);
        c.put(1, 11, 0, 0);
        c.put(2, 22, 0, 0);
        assert_eq!(c.get(&1, 10, 1), None, "entry from epoch 0 is dead in epoch 1");
        c.put(3, 33, 10, 1);
        assert_eq!(c.get(&3, 20, 1), Some(&33));
        assert_eq!(c.get(&2, 20, 1), None);
    }

    #[test]
    fn full_cache_prefers_evicting_invalid_entries() {
        let mut c: LruCache<u32, u32> = LruCache::new(2, 50);
        c.put(1, 11, 0, 0); // will be expired by t=100
        c.put(2, 22, 90, 0); // still fresh at t=100
        c.put(3, 33, 100, 0); // must evict 1 (expired), not 2 (LRU but valid)
        assert_eq!(c.get(&2, 100, 0), Some(&22));
        assert_eq!(c.get(&3, 100, 0), Some(&33));
    }

    #[test]
    fn refresh_updates_in_place_without_eviction() {
        let mut c: LruCache<u32, u32> = LruCache::new(2, 1_000);
        c.put(1, 11, 0, 0);
        c.put(2, 22, 0, 0);
        c.put(1, 111, 5, 0); // refresh, not insert: nothing evicted
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&1, 10, 0), Some(&111));
        assert_eq!(c.get(&2, 10, 0), Some(&22));
    }
}
