//! A bounded LRU map with virtual-time TTL, epoch invalidation, and an
//! optional TinyLFU admission gate.
//!
//! Deliberately simple: a hash map plus a monotone use-tick, with
//! eviction scanning for the least-recently-used entry. Capacities on the
//! hot path are a few thousand entries, and the scan only runs when the
//! cache is full — profile before reaching for an intrusive list.
//!
//! With admission enabled ([`LruCache::with_admission`]) every access is
//! recorded in a [`FrequencySketch`], and a new key may displace a still-
//! valid victim only if its estimated access frequency is higher — the
//! classic TinyLFU gate that keeps one-hit wonders from washing hot
//! entries out of a small cache.

use crate::sketch::{FrequencySketch, SketchState};
use rustc_hash::FxHashMap;
use std::hash::{Hash, Hasher};

struct Entry<V> {
    value: V,
    /// Churn epoch the value was fetched under; a bumped epoch kills it.
    epoch: u64,
    /// Virtual time the value was inserted (TTL anchor).
    inserted_us: u64,
    /// Monotone use-tick for LRU ordering.
    last_used: u64,
}

/// Bounded LRU with TTL + epoch validity. `get` misses (and evicts) expired
/// and stale-epoch entries, so callers never see invalid data.
pub struct LruCache<K, V> {
    map: FxHashMap<K, Entry<V>>,
    capacity: usize,
    ttl_us: u64,
    tick: u64,
    /// TinyLFU admission gate; `None` admits unconditionally.
    sketch: Option<FrequencySketch>,
    /// Inserts the admission gate turned away.
    rejected: u64,
}

fn key_hash<K: Hash>(key: &K) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// # Panics
    /// Panics if `capacity == 0` (use an `Option` instead of an empty cache).
    pub fn new(capacity: usize, ttl_us: u64) -> Self {
        assert!(capacity > 0, "zero-capacity cache");
        Self { map: FxHashMap::default(), capacity, ttl_us, tick: 0, sketch: None, rejected: 0 }
    }

    /// Like [`LruCache::new`], with the TinyLFU admission gate enabled.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn with_admission(capacity: usize, ttl_us: u64) -> Self {
        let mut c = Self::new(capacity, ttl_us);
        c.sketch = Some(FrequencySketch::for_capacity(capacity));
        c
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Inserts the admission gate rejected (0 without admission).
    pub fn admission_rejects(&self) -> u64 {
        self.rejected
    }

    fn valid(&self, e: &Entry<V>, now_us: u64, epoch: u64) -> bool {
        e.epoch == epoch && now_us.saturating_sub(e.inserted_us) <= self.ttl_us
    }

    /// Look up `key` at virtual time `now_us` under churn epoch `epoch`.
    /// Expired or stale entries are evicted and reported as a miss.
    pub fn get(&mut self, key: &K, now_us: u64, epoch: u64) -> Option<&V> {
        if let Some(s) = &mut self.sketch {
            s.record(key_hash(key));
        }
        match self.map.get(key) {
            Some(e) if self.valid(e, now_us, epoch) => {}
            Some(_) => {
                self.map.remove(key);
                return None;
            }
            None => return None,
        }
        self.tick += 1;
        let tick = self.tick;
        let e = self.map.get_mut(key).expect("checked above");
        e.last_used = tick;
        Some(&e.value)
    }

    /// Validity check without side effects: no LRU touch, no frequency
    /// record, no eviction. The cost model peeks cached list sizes here.
    pub fn peek(&self, key: &K, now_us: u64, epoch: u64) -> Option<&V> {
        match self.map.get(key) {
            Some(e) if self.valid(e, now_us, epoch) => Some(&e.value),
            _ => None,
        }
    }

    /// Insert (or refresh) `key`, evicting the least-recently-used entry
    /// when the cache is full. With admission enabled, a new key displaces
    /// a still-valid victim only if the sketch estimates it hotter; the
    /// insert is otherwise rejected. Returns whether the value was stored.
    pub fn put(&mut self, key: K, value: V, now_us: u64, epoch: u64) -> bool {
        // Writes are accesses too (canonical TinyLFU records every
        // reference): a key that is repeatedly written but never looked
        // up still accumulates frequency, so it can eventually displace a
        // colder resident instead of being rejected forever.
        if let Some(s) = &mut self.sketch {
            s.record(key_hash(&key));
        }
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            // Prefer evicting an invalid entry; otherwise the LRU one.
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| (self.valid(e, now_us, epoch), e.last_used))
                .map(|(k, e)| (k.clone(), self.valid(e, now_us, epoch)));
            if let Some((vk, victim_valid)) = victim {
                if victim_valid {
                    if let Some(s) = &self.sketch {
                        // The TinyLFU gate: keep the established entry
                        // unless the newcomer is estimated strictly hotter.
                        if s.estimate(key_hash(&key)) <= s.estimate(key_hash(&vk)) {
                            self.rejected += 1;
                            return false;
                        }
                    }
                }
                self.map.remove(&vk);
            }
        }
        self.map.insert(key, Entry { value, epoch, inserted_us: now_us, last_used: self.tick });
        true
    }

    /// Drop every entry (tests and explicit resets).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Rebuild a cache from an exported image.
    ///
    /// # Panics
    /// Panics on internally inconsistent state (zero capacity, more
    /// entries than capacity, an entry tick beyond the cache tick) — a
    /// corrupt snapshot, not a runtime condition.
    pub fn from_state(state: LruState<K, V>) -> Self {
        assert!(state.capacity > 0, "zero-capacity cache");
        let mut map = FxHashMap::default();
        for e in state.entries {
            assert!(e.last_used <= state.tick, "entry used after the cache's own tick");
            map.insert(
                e.key,
                Entry {
                    value: e.value,
                    epoch: e.epoch,
                    inserted_us: e.inserted_us,
                    last_used: e.last_used,
                },
            );
        }
        assert!(map.len() <= state.capacity as usize, "more entries than capacity");
        Self {
            map,
            capacity: state.capacity as usize,
            ttl_us: state.ttl_us,
            tick: state.tick,
            sketch: state.sketch.map(FrequencySketch::from_state),
            rejected: state.rejected,
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// Walk the cache into an owned [`LruState`]. Entries are exported
    /// **sorted by `last_used`** — ticks are unique (every access bumps
    /// the counter), so equal caches export equal state regardless of
    /// hash-map iteration order.
    pub fn export_state(&self) -> LruState<K, V> {
        let mut entries: Vec<LruEntryState<K, V>> = self
            .map
            .iter()
            .map(|(k, e)| LruEntryState {
                key: k.clone(),
                value: e.value.clone(),
                epoch: e.epoch,
                inserted_us: e.inserted_us,
                last_used: e.last_used,
            })
            .collect();
        entries.sort_by_key(|e| e.last_used);
        LruState {
            capacity: self.capacity as u64,
            ttl_us: self.ttl_us,
            tick: self.tick,
            rejected: self.rejected,
            entries,
            sketch: self.sketch.as_ref().map(FrequencySketch::export_state),
        }
    }
}

/// One exported cache entry (see [`LruCache::export_state`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LruEntryState<K, V> {
    pub key: K,
    pub value: V,
    /// Churn epoch the value was fetched under.
    pub epoch: u64,
    /// Virtual insert time (TTL anchor).
    pub inserted_us: u64,
    /// LRU use-tick (unique per entry).
    pub last_used: u64,
}

/// The owned image of an [`LruCache`] (checkpointing). Restoring it
/// reproduces the cache bit-for-bit: same residents, same LRU order,
/// same admission-sketch contents, same tick — so a restored run makes
/// exactly the hit/miss/evict decisions the original would have made.
#[derive(Debug, Clone, PartialEq)]
pub struct LruState<K, V> {
    pub capacity: u64,
    pub ttl_us: u64,
    pub tick: u64,
    pub rejected: u64,
    /// Entries sorted by `last_used`, oldest first.
    pub entries: Vec<LruEntryState<K, V>>,
    pub sketch: Option<SketchState>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_and_lru_eviction() {
        let mut c: LruCache<u32, &str> = LruCache::new(2, 1_000);
        c.put(1, "a", 0, 0);
        c.put(2, "b", 0, 0);
        assert_eq!(c.get(&1, 10, 0), Some(&"a")); // 1 is now most recent
        c.put(3, "c", 20, 0); // evicts 2
        assert_eq!(c.get(&2, 30, 0), None);
        assert_eq!(c.get(&1, 30, 0), Some(&"a"));
        assert_eq!(c.get(&3, 30, 0), Some(&"c"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn ttl_expires_entries() {
        let mut c: LruCache<u32, u32> = LruCache::new(4, 100);
        c.put(1, 11, 0, 0);
        assert_eq!(c.get(&1, 100, 0), Some(&11), "at the TTL boundary, still valid");
        assert_eq!(c.get(&1, 101, 0), None, "past the TTL, expired");
        assert!(c.is_empty(), "expired entries are evicted on lookup");
    }

    #[test]
    fn epoch_bump_invalidates_everything_older() {
        let mut c: LruCache<u32, u32> = LruCache::new(4, 1_000_000);
        c.put(1, 11, 0, 0);
        c.put(2, 22, 0, 0);
        assert_eq!(c.get(&1, 10, 1), None, "entry from epoch 0 is dead in epoch 1");
        c.put(3, 33, 10, 1);
        assert_eq!(c.get(&3, 20, 1), Some(&33));
        assert_eq!(c.get(&2, 20, 1), None);
    }

    #[test]
    fn full_cache_prefers_evicting_invalid_entries() {
        let mut c: LruCache<u32, u32> = LruCache::new(2, 50);
        c.put(1, 11, 0, 0); // will be expired by t=100
        c.put(2, 22, 90, 0); // still fresh at t=100
        c.put(3, 33, 100, 0); // must evict 1 (expired), not 2 (LRU but valid)
        assert_eq!(c.get(&2, 100, 0), Some(&22));
        assert_eq!(c.get(&3, 100, 0), Some(&33));
    }

    #[test]
    fn refresh_updates_in_place_without_eviction() {
        let mut c: LruCache<u32, u32> = LruCache::new(2, 1_000);
        c.put(1, 11, 0, 0);
        c.put(2, 22, 0, 0);
        c.put(1, 111, 5, 0); // refresh, not insert: nothing evicted
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&1, 10, 0), Some(&111));
        assert_eq!(c.get(&2, 10, 0), Some(&22));
    }

    #[test]
    fn peek_has_no_side_effects() {
        let mut c: LruCache<u32, &str> = LruCache::new(2, 1_000);
        c.put(1, "a", 0, 0);
        c.put(2, "b", 0, 0);
        assert_eq!(c.peek(&1, 10, 0), Some(&"a"));
        assert_eq!(c.peek(&1, 2_000, 0), None, "expired entries peek as absent...");
        assert_eq!(c.len(), 2, "...but are not evicted by the peek");
        // Peeking must not refresh LRU order: 1 stays the older entry.
        c.peek(&1, 10, 0);
        c.get(&2, 20, 0);
        c.put(3, "c", 30, 0);
        assert_eq!(c.get(&1, 40, 0), None, "1 was evicted despite being peeked last");
    }

    #[test]
    fn admission_gate_rejects_one_hit_wonders() {
        let mut c: LruCache<u32, u32> = LruCache::with_admission(4, 1_000_000);
        // Establish 4 hot keys with repeated accesses.
        for k in 0..4u32 {
            c.put(k, k, 0, 0);
        }
        for _ in 0..8 {
            for k in 0..4u32 {
                c.get(&k, 1, 0);
            }
        }
        // A stream of one-hit wonders must not displace them.
        for w in 100..200u32 {
            c.put(w, w, 2, 0);
        }
        for k in 0..4u32 {
            assert_eq!(c.get(&k, 3, 0), Some(&k), "hot key {k} survived the wonder stream");
        }
        assert!(c.admission_rejects() > 0, "the gate actually fired");
    }

    #[test]
    fn admission_gate_admits_keys_that_became_hot() {
        let mut c: LruCache<u32, u32> = LruCache::with_admission(2, 1_000_000);
        c.put(1, 11, 0, 0);
        c.put(2, 22, 0, 0);
        // Key 3 gets accessed (missing) repeatedly — its sketch frequency
        // rises above the never-again-touched residents'.
        for _ in 0..6 {
            c.get(&3, 1, 0);
        }
        assert!(c.put(3, 33, 2, 0), "a genuinely hot newcomer is admitted");
        assert_eq!(c.get(&3, 3, 0), Some(&33));
    }

    #[test]
    fn epoch_fencing_is_exact_not_monotone() {
        // The validity check is `entry.epoch == lookup.epoch`, not `<=`:
        // an entry stamped with a *later* epoch (cached by a diverged
        // branch after a checkpoint) is just as dead under the restored
        // epoch as a pre-churn entry is after the bump.
        let mut c: LruCache<u32, u32> = LruCache::new(4, 1_000_000);
        c.put(1, 11, 0, 7);
        assert_eq!(c.get(&1, 1, 6), None, "future-epoch entry must be fenced");
        c.put(2, 22, 2, 6);
        assert_eq!(c.get(&2, 3, 6), Some(&22), "same-epoch entry is served");
    }

    #[test]
    fn state_round_trip_preserves_lru_order_and_ticks() {
        let mut c: LruCache<u32, u32> = LruCache::new(2, 1_000_000);
        c.put(1, 11, 0, 0);
        c.put(2, 22, 0, 0);
        c.get(&1, 5, 0); // 1 becomes most recent; 2 is now the LRU victim
        let state = c.export_state();
        assert_eq!(state.entries.len(), 2);
        assert!(state.entries[0].last_used < state.entries[1].last_used, "sorted by use-tick");
        let mut r = LruCache::from_state(state);
        // Both caches evict the same victim on the next insert.
        c.put(3, 33, 10, 0);
        r.put(3, 33, 10, 0);
        for cache in [&mut c, &mut r] {
            assert_eq!(cache.get(&2, 11, 0), None, "2 was the LRU victim");
            assert_eq!(cache.get(&1, 11, 0), Some(&11));
            assert_eq!(cache.get(&3, 11, 0), Some(&33));
        }
        assert_eq!(c.export_state(), r.export_state());
    }

    #[test]
    fn state_round_trip_carries_the_admission_sketch() {
        let mut c: LruCache<u32, u32> = LruCache::with_admission(2, 1_000_000);
        c.put(1, 11, 0, 0);
        c.put(2, 22, 0, 0);
        for _ in 0..8 {
            c.get(&1, 1, 0);
            c.get(&2, 1, 0);
        }
        let mut r = LruCache::from_state(c.export_state());
        // A cold newcomer is rejected by both (the sketch survived), and
        // the reject counters stay in lockstep.
        assert!(!c.put(9, 99, 2, 0));
        assert!(!r.put(9, 99, 2, 0));
        assert_eq!(c.admission_rejects(), r.admission_rejects());
        assert!(c.admission_rejects() > 0);
    }

    #[test]
    fn admission_never_blocks_invalid_victims() {
        let mut c: LruCache<u32, u32> = LruCache::with_admission(2, 10);
        c.put(1, 11, 0, 0);
        c.put(2, 22, 0, 0);
        // Both residents expired: a cold newcomer still gets in.
        assert!(c.put(9, 99, 1_000, 0));
        assert_eq!(c.get(&9, 1_001, 0), Some(&99));
        assert_eq!(c.admission_rejects(), 0);
    }
}
