//! A TinyLFU-style frequency sketch: approximate access counts in 4-bit
//! counters, with periodic halving so the estimate tracks *recent*
//! popularity rather than all of history.
//!
//! The sketch backs the posting cache's **admission gate**: when the cache
//! is full, a new key is admitted only if its estimated access frequency
//! exceeds the eviction victim's — one-hit wonders (an endless stream of
//! keys seen exactly once) can no longer wash hot entries out of a small
//! cache. This is the count-min + doorkeeper + aging core of Einziger et
//! al.'s TinyLFU, sized for the few-thousand-entry caches this workload
//! runs: a key's **first** reference in a sample period only enters the
//! doorkeeper set, so the endless wonder stream never pollutes the
//! count-min counters with hash collisions.

use rustc_hash::FxHashSet;

/// Counters per hashed key (count-min rows).
const HASHES: usize = 4;
/// 4-bit counters saturate here.
const COUNTER_MAX: u8 = 15;

/// Approximate access-frequency counter over hashed keys.
#[derive(Debug, Clone)]
pub struct FrequencySketch {
    /// 4-bit counters, two per byte.
    table: Vec<u8>,
    /// Counter slots (a power of two).
    slots: usize,
    /// First-reference filter: a key's initial access in a sample period
    /// lands here instead of the counters (cleared on aging).
    doorkeeper: FxHashSet<u64>,
    /// Accesses recorded since the last halving.
    recorded: u64,
    /// Halve all counters after this many recorded accesses.
    reset_at: u64,
}

impl FrequencySketch {
    /// A sketch sized for a cache of `capacity` entries: ~8 counter slots
    /// per entry, aged after `10 × capacity` recorded accesses (the sample
    /// period of the TinyLFU paper).
    pub fn for_capacity(capacity: usize) -> Self {
        let slots = (capacity.max(8) * 8).next_power_of_two();
        Self {
            table: vec![0; slots / 2],
            slots,
            doorkeeper: FxHashSet::default(),
            recorded: 0,
            reset_at: (capacity.max(8) as u64) * 10,
        }
    }

    fn index(&self, hash: u64, i: usize) -> usize {
        // Distinct avalanched views of one 64-bit hash per row.
        let h = hash
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left((i as u32 + 1) * 17)
            .wrapping_add(i as u64);
        (h as usize) & (self.slots - 1)
    }

    fn get_counter(&self, slot: usize) -> u8 {
        let byte = self.table[slot / 2];
        if slot.is_multiple_of(2) {
            byte & 0x0F
        } else {
            byte >> 4
        }
    }

    fn set_counter(&mut self, slot: usize, v: u8) {
        let byte = &mut self.table[slot / 2];
        if slot.is_multiple_of(2) {
            *byte = (*byte & 0xF0) | (v & 0x0F);
        } else {
            *byte = (*byte & 0x0F) | (v << 4);
        }
    }

    /// Record one access to the key hashing to `hash`. A key's first
    /// access in the current sample period only enters the doorkeeper;
    /// repeat accesses increment the count-min counters — so one-hit
    /// wonders never pollute the counters of genuinely hot keys.
    pub fn record(&mut self, hash: u64) {
        if self.doorkeeper.insert(hash) {
            // First sighting this period: the doorkeeper absorbs it.
        } else {
            for i in 0..HASHES {
                let slot = self.index(hash, i);
                let c = self.get_counter(slot);
                if c < COUNTER_MAX {
                    self.set_counter(slot, c + 1);
                }
            }
        }
        self.recorded += 1;
        if self.recorded >= self.reset_at {
            self.age();
        }
    }

    /// Estimated access count of the key hashing to `hash`: the count-min
    /// minimum over rows (an upper bound that ages away), plus one if the
    /// doorkeeper has seen the key this period.
    pub fn estimate(&self, hash: u64) -> u8 {
        let counted = (0..HASHES).map(|i| self.get_counter(self.index(hash, i))).min().unwrap_or(0);
        counted.saturating_add(u8::from(self.doorkeeper.contains(&hash)))
    }

    /// Halve every counter and clear the doorkeeper (the TinyLFU reset),
    /// so the sketch favors recent popularity.
    fn age(&mut self) {
        for byte in &mut self.table {
            // Halve both nibbles in place.
            *byte = (*byte >> 1) & 0x77;
        }
        self.doorkeeper.clear();
        self.recorded = 0;
    }

    /// Walk the sketch into an owned [`SketchState`]. The doorkeeper set
    /// is exported **sorted**, so equal sketches always export equal
    /// state regardless of hash-set iteration order.
    pub fn export_state(&self) -> SketchState {
        let mut doorkeeper: Vec<u64> = self.doorkeeper.iter().copied().collect();
        doorkeeper.sort_unstable();
        SketchState {
            table: self.table.clone(),
            slots: self.slots as u64,
            doorkeeper,
            recorded: self.recorded,
            reset_at: self.reset_at,
        }
    }

    /// Rebuild a sketch from an exported image.
    ///
    /// # Panics
    /// Panics on internally inconsistent state (non-power-of-two slot
    /// count, table size mismatch) — a corrupt snapshot, not a runtime
    /// condition.
    pub fn from_state(state: SketchState) -> Self {
        let slots = state.slots as usize;
        assert!(slots.is_power_of_two(), "slot count must be a power of two");
        assert_eq!(state.table.len(), slots / 2, "two 4-bit counters per table byte");
        Self {
            table: state.table,
            slots,
            doorkeeper: state.doorkeeper.into_iter().collect(),
            recorded: state.recorded,
            reset_at: state.reset_at,
        }
    }
}

/// The owned image of a [`FrequencySketch`] (checkpointing): counter
/// table, sorted doorkeeper, and the aging position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchState {
    pub table: Vec<u8>,
    pub slots: u64,
    pub doorkeeper: Vec<u64>,
    pub recorded: u64,
    pub reset_at: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_keys_estimate_higher_than_cold() {
        let mut s = FrequencySketch::for_capacity(64);
        for _ in 0..10 {
            s.record(42);
        }
        s.record(7);
        assert!(s.estimate(42) > s.estimate(7));
        assert_eq!(s.estimate(999), 0, "never-seen keys estimate 0");
    }

    #[test]
    fn counters_saturate() {
        let mut s = FrequencySketch::for_capacity(64);
        for _ in 0..100 {
            s.record(1);
        }
        assert!(s.estimate(1) <= COUNTER_MAX + 1, "count-min saturates (+1 doorkeeper)");
    }

    #[test]
    fn aging_halves_estimates() {
        let mut s = FrequencySketch::for_capacity(8);
        for _ in 0..12 {
            s.record(5);
        }
        let before = s.estimate(5);
        // Drive enough accesses to distinct keys to trigger the reset.
        for k in 0..200u64 {
            s.record(1_000 + k);
        }
        assert!(
            s.estimate(5) < before,
            "aging must decay stale popularity ({} -> {})",
            before,
            s.estimate(5)
        );
    }

    #[test]
    fn state_round_trip_resumes_the_same_sketch() {
        let mut s = FrequencySketch::for_capacity(32);
        for k in 0..50u64 {
            s.record(k % 9);
        }
        let mut r = FrequencySketch::from_state(s.export_state());
        for k in 0..20u64 {
            assert_eq!(s.estimate(k), r.estimate(k), "estimates diverge at {k}");
        }
        // Both sketches continue identically, including through an aging
        // reset (recorded/reset_at position is part of the state).
        for k in 0..400u64 {
            s.record(1_000 + k);
            r.record(1_000 + k);
        }
        assert_eq!(s.export_state(), r.export_state());
    }

    #[test]
    fn one_hit_wonders_stay_low() {
        let mut s = FrequencySketch::for_capacity(128);
        for _ in 0..14 {
            s.record(77);
        }
        for k in 0..500u64 {
            s.record(10_000 + k);
        }
        // The hot key dominates any single one-hit wonder even after the
        // stream (collisions may lift wonders slightly, never above hot).
        let hot = s.estimate(77);
        let wonder = s.estimate(10_250);
        assert!(hot > wonder, "hot {hot} vs wonder {wonder}");
    }
}
