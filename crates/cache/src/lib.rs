//! # sqo-cache — hot-path caching & probe batching
//!
//! The similarity operators decompose every query into a fan-out of exact
//! q-gram key probes against the overlay. Over a skewed workload the same
//! posting lists are fetched again and again, and concurrent queries route
//! duplicate probes to the same partitions — pure overlay traffic with no
//! reuse. This crate provides the two composable services that recover it:
//!
//! * [`LruCache`] — a bounded, initiator-side LRU of gram-key →
//!   posting-list entries. Entries carry a virtual-time TTL and the
//!   overlay's **cache epoch** ([`sqo_overlay::Network::cache_epoch`]): any
//!   membership change or publication invalidates everything cached before
//!   it, so neither a stale replica nor a pre-publish list is ever served
//!   across such an event. Because the cache stores
//!   the *full* (unfiltered) list, any query's length/position filter can
//!   run against it at the initiator — results are byte-identical to the
//!   delegated filter-at-owner path.
//! * [`ChannelPool`] — cross-query probe coalescing. The first probe to a
//!   partition routes normally (the overlay's
//!   [`retrieve_multi`](sqo_overlay::Network::retrieve_multi) shape) and
//!   leaves the exchange open for a small virtual-time window; probes from
//!   other in-flight tasks arriving within it ride the open channel — one
//!   direct request/reply instead of a routed chain, the overlay charged
//!   for routing once per window.
//!
//! [`CacheBatchBroker`] combines both behind one façade; `sqo-core`'s
//! `ProbeBroker` trait is implemented for it, wiring the services into the
//! engine's stepped probe pipeline. The broker itself is pure bookkeeping —
//! it never touches the network, so the engine stays the single place where
//! messages are charged.

pub mod batch;
pub mod broker;
pub mod lru;
pub mod sketch;

pub use batch::{ChannelPool, ChannelPoolState, PartitionChannel};
pub use broker::{BrokerConfig, BrokerCounters, BrokerState, CacheBatchBroker};
pub use lru::{LruCache, LruEntryState, LruState};
pub use sketch::{FrequencySketch, SketchState};
