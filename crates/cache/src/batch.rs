//! Cross-query probe coalescing via **partition channels**: the first probe
//! to a partition routes normally and leaves the routed multi-key exchange
//! open for a small virtual-time window; probes arriving within the window
//! — from any in-flight task — ride the open channel as additional keys,
//! charged one direct request/reply pair instead of a full routed chain.
//! The overlay pays the routing once per window.
//!
//! An earlier design parked probes until a window *deadline* and flushed
//! them as one synchronized message. On the discrete-event simulator that
//! synchronization was strictly worse: every probe waited out the window,
//! deadline herds swamped the hot partition owners, and closed-loop
//! workloads amplified the queueing into multi-x tail inflation. The
//! backward-looking window keeps the full coalescing win (the route is
//! charged once) while never delaying anyone — riders depart immediately
//! and their chains stay as short as an ordinary probe's.
//!
//! Channels carry the churn epoch: any membership change closes every open
//! channel (the remembered owner may be dead), exactly like the posting
//! cache's entries. The pool is pure bookkeeping; the engine performs and
//! charges the actual exchanges.

use rustc_hash::FxHashMap;
use sqo_overlay::peer::PeerId;

/// One open multi-key exchange with a partition's owner.
#[derive(Debug, Clone, Copy)]
pub struct PartitionChannel {
    /// The peer the routed exchange reached (scans happen there).
    pub owner: PeerId,
    /// Virtual time the routed exchange completed (window anchor).
    pub opened_us: u64,
    /// Route hops the opening exchange paid — what every rider saves.
    pub route_hops: u64,
    /// Churn epoch the channel was opened under.
    pub epoch: u64,
}

/// Per-partition open channels. See the module docs for the protocol.
pub struct ChannelPool {
    window_us: u64,
    channels: FxHashMap<usize, PartitionChannel>,
    /// Lifetime count of channels opened (routed exchanges).
    pub opened: u64,
    /// Lifetime count of probe submissions that rode an open channel.
    pub rides: u64,
}

impl ChannelPool {
    pub fn new(window_us: u64) -> Self {
        Self { window_us, channels: FxHashMap::default(), opened: 0, rides: 0 }
    }

    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// The open channel for `part` if it is still within its window and
    /// from the current churn epoch; stale channels are evicted.
    pub fn lookup(&mut self, part: usize, now_us: u64, epoch: u64) -> Option<PartitionChannel> {
        match self.channels.get(&part) {
            Some(c) if c.epoch == epoch && now_us.saturating_sub(c.opened_us) <= self.window_us => {
                self.rides += 1;
                Some(*c)
            }
            Some(_) => {
                self.channels.remove(&part);
                None
            }
            None => None,
        }
    }

    /// Record a freshly routed exchange as `part`'s open channel.
    pub fn record(&mut self, part: usize, owner: PeerId, route_hops: u64, now_us: u64, epoch: u64) {
        self.opened += 1;
        self.channels
            .insert(part, PartitionChannel { owner, opened_us: now_us, route_hops, epoch });
    }

    /// Walk the pool into an owned [`ChannelPoolState`]. Channels are
    /// exported sorted by partition, so equal pools export equal state.
    pub fn export_state(&self) -> ChannelPoolState {
        let mut channels: Vec<(u64, PartitionChannel)> =
            self.channels.iter().map(|(&p, &c)| (p as u64, c)).collect();
        channels.sort_unstable_by_key(|&(p, _)| p);
        ChannelPoolState {
            window_us: self.window_us,
            channels,
            opened: self.opened,
            rides: self.rides,
        }
    }

    /// Rebuild a pool from an exported image.
    pub fn from_state(state: ChannelPoolState) -> Self {
        Self {
            window_us: state.window_us,
            channels: state.channels.into_iter().map(|(p, c)| (p as usize, c)).collect(),
            opened: state.opened,
            rides: state.rides,
        }
    }
}

/// The owned image of a [`ChannelPool`] (checkpointing).
#[derive(Debug, Clone)]
pub struct ChannelPoolState {
    pub window_us: u64,
    /// Open channels as `(partition, channel)`, sorted by partition.
    pub channels: Vec<(u64, PartitionChannel)>,
    pub opened: u64,
    pub rides: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_within_the_window_ride_the_channel() {
        let mut p = ChannelPool::new(300);
        assert!(p.lookup(7, 1_000, 0).is_none());
        p.record(7, PeerId(9), 4, 1_000, 0);
        let c = p.lookup(7, 1_200, 0).expect("inside the window");
        assert_eq!(c.owner, PeerId(9));
        assert_eq!(c.route_hops, 4);
        assert!(p.lookup(7, 1_300, 0).is_some(), "window boundary is inclusive");
        assert_eq!(p.rides, 2);
        assert_eq!(p.opened, 1);
    }

    #[test]
    fn window_expiry_closes_the_channel() {
        let mut p = ChannelPool::new(300);
        p.record(3, PeerId(2), 3, 500, 0);
        assert!(p.lookup(3, 801, 0).is_none(), "past the window");
        assert!(p.lookup(3, 700, 0).is_none(), "expired channels are evicted, not revived");
    }

    #[test]
    fn churn_epoch_closes_every_channel() {
        let mut p = ChannelPool::new(1_000);
        p.record(1, PeerId(4), 5, 100, 0);
        assert!(p.lookup(1, 150, 1).is_none(), "membership change closes the channel");
        p.record(1, PeerId(5), 5, 200, 1);
        assert_eq!(p.lookup(1, 250, 1).unwrap().owner, PeerId(5));
    }

    #[test]
    fn state_round_trip_keeps_open_channels_and_counters() {
        let mut p = ChannelPool::new(300);
        p.record(7, PeerId(9), 4, 1_000, 2);
        p.record(3, PeerId(1), 2, 1_100, 2);
        p.lookup(7, 1_050, 2);
        let state = p.export_state();
        assert_eq!(state.channels.len(), 2);
        assert!(state.channels[0].0 < state.channels[1].0, "sorted by partition");
        let mut r = ChannelPool::from_state(state);
        assert_eq!(r.window_us(), 300);
        assert_eq!((r.opened, r.rides), (2, 1));
        let c = r.lookup(7, 1_200, 2).expect("channel survived the round trip");
        assert_eq!((c.owner, c.route_hops), (PeerId(9), 4));
        assert!(r.lookup(3, 1_200, 2).is_some());
        assert!(r.lookup(3, 1_200, 3).is_none(), "epoch fencing still applies after restore");
    }

    #[test]
    fn channels_are_per_partition() {
        let mut p = ChannelPool::new(300);
        p.record(1, PeerId(4), 2, 100, 0);
        assert!(p.lookup(2, 150, 0).is_none());
        assert!(p.lookup(1, 150, 0).is_some());
    }
}
